package controller

import (
	"context"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"grefar/internal/agent"
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/transport"
)

// localConn adapts an in-process agent to AgentConn without TCP, for fast
// unit tests; the loopback tests below exercise the real transport.
type localConn struct {
	a *agent.Agent
}

func (l localConn) Call(kind string, reqBody, respBody any) error {
	body, err := transport.Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := l.a.Handle(kind, body)
	if err != nil {
		return err
	}
	if respBody == nil {
		return nil
	}
	data, err := transport.Marshal(out)
	if err != nil {
		return err
	}
	return transport.Unmarshal(data, respBody)
}

func buildSystem(t *testing.T, slots int, overTCP bool) (sim.Inputs, []AgentConn, func()) {
	t.Helper()
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]AgentConn, in.Cluster.N())
	var cleanups []func()
	for i := 0; i < in.Cluster.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		if overTCP {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := a.Serve(lis)
			cli, err := transport.Dial(srv.Addr(), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = cli
			cleanups = append(cleanups, func() { cli.Close(); srv.Close() })
		} else {
			conns[i] = localConn{a: a}
		}
	}
	return in, conns, func() {
		for _, f := range cleanups {
			f()
		}
	}
}

func TestNewValidation(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(in.Cluster, nil, conns); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(in.Cluster, g, conns[:1]); err == nil {
		t.Error("missing agents accepted")
	}
	bad := model.NewReferenceCluster()
	bad.Accounts = nil
	if _, err := New(bad, g, conns); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestRunSlotRejectsBadArrivals(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, _ := core.New(in.Cluster, core.Config{V: 7.5})
	ct, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ct.RunSlot(0, []int{1}); err == nil {
		t.Error("short arrivals accepted")
	}
	neg := make([]int, in.Cluster.J())
	neg[0] = -1
	if _, _, _, err := ct.RunSlot(0, neg); err == nil {
		t.Error("negative arrivals accepted")
	}
}

// TestDistributedMatchesSimulator is the keystone test: the distributed
// control loop (controller + agents) must produce bit-identical metrics to
// the single-process simulator on the same inputs and scheduler, because the
// protocol preserves the exact slot semantics.
func TestDistributedMatchesSimulator(t *testing.T) {
	const slots = 24 * 14
	for _, overTCP := range []bool{false, true} {
		in, conns, cleanup := buildSystem(t, slots, overTCP)

		g1, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := New(in.Cluster, g1, conns)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := ct.Run(slots, in.Workload)
		if err != nil {
			t.Fatalf("overTCP=%v: %v", overTCP, err)
		}
		cleanup()

		in2, err := sim.NewReferenceInputs(2012, slots)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := core.New(in2.Cluster, core.Config{V: 7.5, Beta: 100})
		if err != nil {
			t.Fatal(err)
		}
		local, err := sim.Run(in2, g2, sim.Options{Slots: slots, ValidateActions: true})
		if err != nil {
			t.Fatal(err)
		}

		if math.Abs(dist.AvgEnergy-local.AvgEnergy) > 1e-9 {
			t.Errorf("overTCP=%v: energy %v != %v", overTCP, dist.AvgEnergy, local.AvgEnergy)
		}
		if math.Abs(dist.AvgFairness-local.AvgFairness) > 1e-9 {
			t.Errorf("overTCP=%v: fairness %v != %v", overTCP, dist.AvgFairness, local.AvgFairness)
		}
		for i := range dist.AvgLocalDelay {
			if math.Abs(dist.AvgLocalDelay[i]-local.AvgLocalDelay[i]) > 1e-9 {
				t.Errorf("overTCP=%v: delay[%d] %v != %v", overTCP, i, dist.AvgLocalDelay[i], local.AvgLocalDelay[i])
			}
			if math.Abs(dist.AvgWorkPerDC[i]-local.AvgWorkPerDC[i]) > 1e-9 {
				t.Errorf("overTCP=%v: work[%d] %v != %v", overTCP, i, dist.AvgWorkPerDC[i], local.AvgWorkPerDC[i])
			}
		}
		if math.Abs(dist.TotalProcessed-local.TotalProcessed) > 1e-6 {
			t.Errorf("overTCP=%v: processed %v != %v", overTCP, dist.TotalProcessed, local.TotalProcessed)
		}
	}
}

func TestDistributedAlways(t *testing.T) {
	const slots = 24 * 5
	in, conns, cleanup := buildSystem(t, slots, false)
	defer cleanup()
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := New(in.Cluster, a, conns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ct.Run(slots, in.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLocalDelay[0] < 0.9 || res.AvgLocalDelay[0] > 1.5 {
		t.Errorf("Always delay = %v, want ~1", res.AvgLocalDelay[0])
	}
	if res.TotalProcessed <= 0 {
		t.Error("nothing processed")
	}
}

func TestRunValidation(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 5, false)
	defer cleanup()
	g, _ := core.New(in.Cluster, core.Config{V: 1})
	ct, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Run(0, in.Workload); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ct.Run(5, nil); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestControllerSnapshotRestore(t *testing.T) {
	const slots = 10
	in, conns, cleanup := buildSystem(t, slots, false)
	defer cleanup()
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := ct.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A replacement controller (same agents) resumes with identical central
	// backlogs.
	ct2, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	a, b := ct.CentralLens(), ct2.CentralLens()
	for j := range a {
		if a[j] != b[j] {
			t.Errorf("central[%d]: %v != %v", j, a[j], b[j])
		}
	}
	if _, _, _, err := ct2.RunSlot(5, in.Workload.Arrivals(5)); err != nil {
		t.Fatalf("restored controller cannot continue: %v", err)
	}
	if err := ct2.Restore([]byte("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}

// ctxConn wraps localConn with a CallContext method, recording that the
// controller preferred the context-aware path.
type ctxConn struct {
	localConn
	sawCtx bool
}

func (c *ctxConn) CallContext(ctx context.Context, kind string, reqBody, respBody any) error {
	c.sawCtx = true
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Call(kind, reqBody, respBody)
}

func TestRunSlotUsesCallContextWhenAvailable(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	wrapped := make([]AgentConn, len(conns))
	ctxConns := make([]*ctxConn, len(conns))
	for i, c := range conns {
		cc := &ctxConn{localConn: c.(localConn)}
		ctxConns[i] = cc
		wrapped[i] = cc
	}
	g, _ := core.New(in.Cluster, core.Config{V: 7.5})
	ct, err := New(in.Cluster, g, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ct.RunSlot(0, in.Workload.Arrivals(0)); err != nil {
		t.Fatal(err)
	}
	for i, cc := range ctxConns {
		if !cc.sawCtx {
			t.Errorf("agent %d: controller used Call, want CallContext", i)
		}
	}

	// A canceled context must surface from the agent calls, not hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err = ct.RunSlotContext(ctx, 1, in.Workload.Arrivals(1))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
