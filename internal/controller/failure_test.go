package controller

import (
	"net"
	"testing"
	"time"

	"grefar/internal/agent"
	"grefar/internal/core"
	"grefar/internal/sim"
	"grefar/internal/transport"
)

// TestControllerSurfacesDeadAgent injects a mid-run agent failure and checks
// the controller aborts with a clear error instead of hanging or corrupting
// state.
func TestControllerSurfacesDeadAgent(t *testing.T) {
	const slots = 48
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]AgentConn, in.Cluster.N())
	var servers []*transport.Server
	for i := 0; i < in.Cluster.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := a.Serve(lis)
		servers = append(servers, srv)
		cli, err := transport.Dial(srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		conns[i] = cli
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}

	// A few healthy slots first.
	for s := 0; s < 5; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatalf("healthy slot %d: %v", s, err)
		}
	}

	// Kill agent 1 and expect the next slot to fail fast.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, _, err := ct.RunSlot(5, in.Workload.Arrivals(5)); err == nil {
		t.Error("slot with a dead agent succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("failure detection took too long")
	}
}

// TestControllerRecoversWithReconnectClient restarts an agent between slots
// and shows that reconnecting transports let the control loop carry on (the
// restarted agent has an empty local queue — acceptable loss semantics for a
// site that genuinely rebooted).
func TestControllerRecoversWithReconnectClient(t *testing.T) {
	const slots = 24
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	mkAgent := func(i int) *agent.Agent {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	conns := make([]AgentConn, in.Cluster.N())
	servers := make([]*transport.Server, in.Cluster.N())
	addrs := make([]string, in.Cluster.N())
	for i := 0; i < in.Cluster.N(); i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = mkAgent(i).Serve(lis)
		addrs[i] = servers[i].Addr()
		rc := transport.NewReconnectClient(addrs[i], time.Second, 3)
		defer rc.Close()
		conns[i] = rc
	}
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}()

	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := New(in.Cluster, g, conns)
	if err != nil {
		t.Fatal(err)
	}

	for s := 0; s < 10; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}

	// Restart agent 2 on the same address between slots.
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	servers[2] = mkAgent(2).Serve(lis)

	for s := 10; s < slots; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatalf("slot %d after restart: %v", s, err)
		}
	}
}
