package controller

import (
	"bytes"
	"encoding/json"
	"flag"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"grefar/internal/agent"
	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/transport/chaos"
)

var updateChaosGolden = flag.Bool("update", false, "rewrite testdata/golden_chaos.jsonl")

const (
	chaosSeed  = 2012
	chaosSlots = 40
)

// chaosPlan kills two of the three reference agents for disjoint slot
// windows and sprinkles seeded call drops on top — the acceptance scenario:
// agents leave mid-run and come back on the same address.
func chaosPlan() *chaos.Plan {
	return &chaos.Plan{
		Seed: chaosSeed,
		Drop: 0.05,
		Windows: []chaos.Window{
			{Agent: 1, From: 8, To: 14},
			{Agent: 2, From: 20, To: 26},
		},
	}
}

// runChaosTrace runs the reference workload under the Degrade policy with the
// plan's faults injected on every agent connection, the invariant checker
// verifying every applied slot, and a trace recorder pinning the event
// stream. It returns the serialized JSONL trace and the controller.
func runChaosTrace(t *testing.T, plan *chaos.Plan, reg *telemetry.Registry) ([]byte, *Controller) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	in, err := sim.NewReferenceInputs(chaosSeed, chaosSlots)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]AgentConn, in.Cluster.N())
	for i := 0; i < in.Cluster.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = plan.Wrap(localConn{a: a}, i)
	}
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	rec := &invariant.TraceRecorder{}
	ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
	opts := []Option{
		WithObserver(telemetry.Multi(rec, ck)),
		WithFailurePolicy(Degrade),
	}
	if reg != nil {
		opts = append(opts, WithHealthMetrics(reg))
	}
	ct, err := New(in.Cluster, g, conns, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < chaosSlots; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatalf("degraded slot %d failed: %v", s, err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("invariant checker rejected the degraded run: %v", err)
	}
	if ck.Slots() != chaosSlots {
		t.Fatalf("checker saw %d applied slots, want %d", ck.Slots(), chaosSlots)
	}
	out, err := rec.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	return out, ct
}

// TestDegradedModeSurvivesChaos is the acceptance scenario: under the Degrade
// policy with seeded chaos killing two of the three agents for slot windows
// mid-run, every slot completes, the invariant checker passes every applied
// slot, arrivals keep being admitted while sites are down, and both agents
// recover to Healthy within a bounded number of slots after their windows end.
func TestDegradedModeSurvivesChaos(t *testing.T) {
	reg := telemetry.NewRegistry()
	trace, ct := runChaosTrace(t, chaosPlan(), reg)

	for i, h := range ct.Health() {
		if h != Healthy {
			t.Errorf("agent %d ended the run %v, want healthy", i, h)
		}
	}
	if v := ct.metrics.degraded.Value(); v < 10 {
		t.Errorf("degraded-slot counter = %v, want >= 10 (two 6-slot windows hit)", v)
	}
	if v := ct.metrics.failures.With(dcLabel(1)).Value(); v == 0 {
		t.Error("agent 1 failure counter never incremented")
	}

	// Decode the trace: every slot present, partition windows marked degraded,
	// arrivals admitted on degraded slots, and recovery bounded — an agent's
	// masking must not outlast its window by more than one slot (the probe
	// slot that completes the rejoin).
	events := parseTrace(t, trace)
	if len(events) != chaosSlots {
		t.Fatalf("trace has %d events, want %d", len(events), chaosSlots)
	}
	degradedBy := make(map[int][]int) // agent -> slots masked
	for s, ev := range events {
		if ev.Slot != s {
			t.Fatalf("event %d has slot %d", s, ev.Slot)
		}
		for _, i := range ev.Degraded {
			degradedBy[i] = append(degradedBy[i], s)
		}
		if ev.Arrived == 0 && s < chaosSlots {
			// The reference workload has nonzero arrivals every slot; a zero
			// here would mean a degraded slot dropped admissions.
			t.Errorf("slot %d admitted no arrivals", s)
		}
	}
	for _, w := range chaosPlan().Windows {
		slots := degradedBy[w.Agent]
		if len(slots) == 0 {
			t.Fatalf("agent %d never masked despite window %+v", w.Agent, w)
		}
		// Bounded recovery: the contiguous masked stretch must end within one
		// slot of the window closing. (Later isolated masked slots are the
		// plan's 5% call drops, not lingering damage from the partition.)
		recovered := w.To
		for containsInt(slots, recovered) {
			recovered++
		}
		if recovered > w.To+1 {
			t.Errorf("agent %d still masked through slot %d, window ended at %d (recovery not bounded)", w.Agent, recovered-1, w.To)
		}
		for s := w.From; s < w.To; s++ {
			if !containsInt(slots, s) {
				t.Errorf("agent %d not masked at in-window slot %d", w.Agent, s)
			}
		}
	}
}

func parseTrace(t *testing.T, raw []byte) []telemetry.SlotEvent {
	t.Helper()
	var events []telemetry.SlotEvent
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev telemetry.SlotEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestGoldenChaosTrace pins the full event stream of the chaos run: same
// seed, same faults, byte-identical trace, run after run. Regenerate
// deliberately with `go test ./internal/controller -run TestGoldenChaos -update`.
func TestGoldenChaosTrace(t *testing.T) {
	got, _ := runChaosTrace(t, chaosPlan(), nil)
	path := filepath.Join("testdata", "golden_chaos.jsonl")
	if *updateChaosGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden chaos trace (regenerate with -update): %v", err)
	}
	if diff := invariant.DiffJSONL(got, want); diff != "" {
		t.Errorf("chaos trace deviates from %s:\n%s", path, diff)
	}

	// And the run must be deterministic in-process too.
	again, _ := runChaosTrace(t, chaosPlan(), nil)
	if diff := invariant.DiffJSONL(again, got); diff != "" {
		t.Errorf("same-seed chaos reruns diverge:\n%s", diff)
	}
}

// TestRejoinMatchesMaskedTrace is the strongest recovery statement: a real
// TCP run where an agent process is killed mid-run and restarted on the same
// address must produce a byte-identical event trace to a run where that
// outage window was injected as a chaos partition from the start. The health
// machine, the shadow ledgers, and the restore handshake make the recovery
// path indistinguishable from planned masking.
func TestRejoinMatchesMaskedTrace(t *testing.T) {
	const (
		slots      = 24
		downAgent  = 2
		outageFrom = 6
		outageTo   = 12
	)

	// Run A: real TCP, agent killed and restarted between slot boundaries.
	traceA := func() []byte {
		in, err := sim.NewReferenceInputs(chaosSeed, slots)
		if err != nil {
			t.Fatal(err)
		}
		mkAgent := func(i int) *agent.Agent {
			a, err := agent.New(agent.Config{
				Cluster:      in.Cluster,
				DataCenter:   i,
				Price:        in.Prices[i],
				Availability: in.Availability,
			})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		conns := make([]AgentConn, in.Cluster.N())
		servers := make([]*transport.Server, in.Cluster.N())
		addrs := make([]string, in.Cluster.N())
		for i := 0; i < in.Cluster.N(); i++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			servers[i] = mkAgent(i).Serve(lis)
			addrs[i] = servers[i].Addr()
			rc := transport.NewReconnectClient(addrs[i], 500*time.Millisecond, 2)
			defer rc.Close()
			conns[i] = rc
		}
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		g, err := core.New(in.Cluster, core.Config{V: 7.5})
		if err != nil {
			t.Fatal(err)
		}
		rec := &invariant.TraceRecorder{}
		ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
		ct, err := New(in.Cluster, g, conns,
			WithObserver(telemetry.Multi(rec, ck)), WithFailurePolicy(Degrade))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < slots; s++ {
			if s == outageFrom {
				if err := servers[downAgent].Close(); err != nil {
					t.Fatal(err)
				}
			}
			if s == outageTo {
				lis, err := net.Listen("tcp", addrs[downAgent])
				if err != nil {
					t.Fatal(err)
				}
				servers[downAgent] = mkAgent(downAgent).Serve(lis)
			}
			if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
				t.Fatalf("TCP run slot %d: %v", s, err)
			}
		}
		if err := ck.Err(); err != nil {
			t.Fatalf("checker rejected the TCP outage run: %v", err)
		}
		for i, h := range ct.Health() {
			if h != Healthy {
				t.Fatalf("TCP run: agent %d ended %v", i, h)
			}
		}
		out, err := rec.MarshalJSONL()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	// Run B: in-process, with the same outage injected as a chaos partition
	// window known from the start.
	traceB := func() []byte {
		in, err := sim.NewReferenceInputs(chaosSeed, slots)
		if err != nil {
			t.Fatal(err)
		}
		plan := &chaos.Plan{Seed: 1, Windows: []chaos.Window{
			{Agent: downAgent, From: outageFrom, To: outageTo},
		}}
		conns := make([]AgentConn, in.Cluster.N())
		for i := 0; i < in.Cluster.N(); i++ {
			a, err := agent.New(agent.Config{
				Cluster:      in.Cluster,
				DataCenter:   i,
				Price:        in.Prices[i],
				Availability: in.Availability,
			})
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = plan.Wrap(localConn{a: a}, i)
		}
		g, err := core.New(in.Cluster, core.Config{V: 7.5})
		if err != nil {
			t.Fatal(err)
		}
		rec := &invariant.TraceRecorder{}
		ct, err := New(in.Cluster, g, conns,
			WithObserver(rec), WithFailurePolicy(Degrade))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < slots; s++ {
			if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
				t.Fatalf("masked run slot %d: %v", s, err)
			}
		}
		out, err := rec.MarshalJSONL()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	if diff := invariant.DiffJSONL(traceA, traceB); diff != "" {
		t.Errorf("kill/restart trace deviates from masked-from-start trace:\n%s", diff)
	}
}

// TestStrictPolicyStillAborts pins the historical contract: without the
// Degrade opt-in, an injected fault aborts the slot with an error instead of
// masking the agent.
func TestStrictPolicyStillAborts(t *testing.T) {
	in, err := sim.NewReferenceInputs(chaosSeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{Seed: 1, Windows: []chaos.Window{{Agent: 1, From: 3, To: 5}}}
	conns := make([]AgentConn, in.Cluster.N())
	for i := 0; i < in.Cluster.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = plan.Wrap(localConn{a: a}, i)
	}
	g, _ := core.New(in.Cluster, core.Config{V: 7.5})
	ct, err := New(in.Cluster, g, conns) // default policy: Strict
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if _, _, _, err := ct.RunSlot(s, in.Workload.Arrivals(s)); err != nil {
			t.Fatalf("healthy slot %d: %v", s, err)
		}
	}
	if _, _, _, err := ct.RunSlot(3, in.Workload.Arrivals(3)); err == nil {
		t.Fatal("Strict policy completed a slot with a partitioned agent")
	}
}
