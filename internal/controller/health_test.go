package controller

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"grefar/internal/core"
	"grefar/internal/telemetry"
)

// switchConn is an agent connection with a breaker: while tripped, every call
// fails, indistinguishable from a dead or partitioned agent.
type switchConn struct {
	inner AgentConn
	down  atomic.Bool
}

func (s *switchConn) Call(kind string, reqBody, respBody any) error {
	if s.down.Load() {
		return errors.New("switchConn: agent unreachable")
	}
	return s.inner.Call(kind, reqBody, respBody)
}

func TestParseFailurePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FailurePolicy
		ok   bool
	}{
		{"strict", Strict, true},
		{"degrade", Degrade, true},
		{"", Strict, false},
		{"lenient", Strict, false},
	} {
		got, err := ParseFailurePolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseFailurePolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseFailurePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err == nil && got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}

func TestHealthConfigDefaults(t *testing.T) {
	hc := HealthConfig{}.withDefaults()
	if hc.SuspectAfter != 1 || hc.DeadAfter != 3 {
		t.Errorf("defaults = %+v, want SuspectAfter 1, DeadAfter 3", hc)
	}
	// DeadAfter is clamped to at least SuspectAfter.
	hc = HealthConfig{SuspectAfter: 5, DeadAfter: 2}.withDefaults()
	if hc.DeadAfter != 5 {
		t.Errorf("DeadAfter = %d, want clamped to 5", hc.DeadAfter)
	}
}

func TestAgentHealthString(t *testing.T) {
	for h, want := range map[AgentHealth]string{
		Healthy: "healthy", Suspect: "suspect", Dead: "dead", Rejoining: "rejoining",
	} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

// TestHealthStateMachineTransitions drives the failure/success counters
// directly and checks the threshold-governed transitions, including the gauge
// published per agent.
func TestHealthStateMachineTransitions(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ct, err := New(in.Cluster, g, conns,
		WithFailurePolicy(Degrade),
		WithHealthThresholds(2, 4),
		WithHealthMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}

	want := func(i int, s AgentHealth) {
		t.Helper()
		if got := ct.Health()[i]; got != s {
			t.Fatalf("agent %d health = %v, want %v", i, got, s)
		}
	}

	want(0, Healthy)
	ct.recordFailure(0)
	want(0, Healthy) // one failure is below SuspectAfter=2
	ct.recordFailure(0)
	want(0, Suspect)
	ct.recordFailure(0)
	want(0, Suspect)
	ct.recordFailure(0)
	want(0, Dead) // fourth consecutive failure reaches DeadAfter=4
	ct.recordSuccess(0)
	want(0, Healthy)

	// A success mid-streak resets the counter entirely.
	ct.recordFailure(1)
	ct.recordSuccess(1)
	ct.recordFailure(1)
	want(1, Healthy)

	// Rejoining is left by recordSuccess only.
	ct.setState(2, Rejoining)
	ct.recordSuccess(2)
	want(2, Healthy)

	if v := ct.metrics.failures.With(dcLabel(0)).Value(); v != 4 {
		t.Errorf("failure counter = %v, want 4", v)
	}
	if v := ct.metrics.state.With(dcLabel(0)).Value(); v != float64(Healthy) {
		t.Errorf("state gauge = %v, want %v", v, float64(Healthy))
	}
}

// TestHealthTransitionTable walks the health state machine through every
// transition as event sequences: failed and resolved interactions drive the
// counters exactly as gather/allocate outcomes do, and "probe" events run a
// real probeDead round against the agent (reachable or not), so the
// Dead -> Rejoining edge is exercised through the actual heartbeat + resync
// path rather than by poking setState.
func TestHealthTransitionTable(t *testing.T) {
	const (
		fail      = "fail"       // one failed interaction (gather or allocate error)
		ok        = "ok"         // one fully-resolved interaction
		probe     = "probe"      // slot-opening heartbeat round, agent answering
		probeFail = "probe-fail" // heartbeat round with the agent still dark
	)
	type step struct {
		ev   string
		want AgentHealth
	}
	cases := []struct {
		name         string
		suspectAfter int
		deadAfter    int
		steps        []step
	}{
		{
			// The full lifecycle the ISSUE names: every state visited in order.
			name: "full lifecycle at default thresholds", suspectAfter: 1, deadAfter: 3,
			steps: []step{
				{fail, Suspect}, {fail, Suspect}, {fail, Dead},
				{probe, Rejoining}, {ok, Healthy},
			},
		},
		{
			// Boundary: the transition fires on exactly the SuspectAfter-th
			// consecutive failure, not one earlier.
			name: "suspect exactly at threshold", suspectAfter: 3, deadAfter: 5,
			steps: []step{{fail, Healthy}, {fail, Healthy}, {fail, Suspect}},
		},
		{
			// Boundary: Dead on exactly the DeadAfter-th consecutive failure.
			name: "dead exactly at threshold", suspectAfter: 2, deadAfter: 4,
			steps: []step{{fail, Healthy}, {fail, Suspect}, {fail, Suspect}, {fail, Dead}},
		},
		{
			// A success while Suspect heals immediately and restarts the streak
			// from zero: the next failure is one-of-SuspectAfter again.
			name: "success during suspect restarts the streak", suspectAfter: 2, deadAfter: 4,
			steps: []step{
				{fail, Healthy}, {fail, Suspect}, {ok, Healthy},
				{fail, Healthy}, {fail, Suspect},
			},
		},
		{
			// Failed probes keep an agent Dead indefinitely; the first answered
			// probe re-syncs it to Rejoining and the next report completes it.
			name: "failed probes keep an agent dead", suspectAfter: 1, deadAfter: 2,
			steps: []step{
				{fail, Suspect}, {fail, Dead},
				{probeFail, Dead}, {probeFail, Dead},
				{probe, Rejoining}, {ok, Healthy},
			},
		},
		{
			// Rejoining is provisional: a rejoin does not reset the failure
			// streak, so a Rejoining agent whose very next interaction fails
			// relapses straight to Dead, never re-earning Suspect grace.
			name: "rejoining relapses straight to dead", suspectAfter: 1, deadAfter: 3,
			steps: []step{
				{fail, Suspect}, {fail, Suspect}, {fail, Dead},
				{probe, Rejoining}, {fail, Dead},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, conns, cleanup := buildSystem(t, 10, false)
			defer cleanup()
			sw := &switchConn{inner: conns[0]}
			conns[0] = sw
			g, err := core.New(in.Cluster, core.Config{V: 7.5})
			if err != nil {
				t.Fatal(err)
			}
			ct, err := New(in.Cluster, g, conns,
				WithFailurePolicy(Degrade),
				WithHealthThresholds(tc.suspectAfter, tc.deadAfter),
			)
			if err != nil {
				t.Fatal(err)
			}
			for slot, st := range tc.steps {
				switch st.ev {
				case fail:
					ct.recordFailure(0)
				case ok:
					ct.recordSuccess(0)
				case probe:
					sw.down.Store(false)
					ct.probeDead(context.Background(), slot)
				case probeFail:
					sw.down.Store(true)
					ct.probeDead(context.Background(), slot)
					sw.down.Store(false)
				default:
					t.Fatalf("unknown event %q", st.ev)
				}
				if got := ct.Health()[0]; got != st.want {
					t.Fatalf("step %d (%s): health = %v, want %v", slot, st.ev, got, st.want)
				}
			}
		})
	}
}

// TestSuspectHealsThroughRealGather covers probe-success during Suspect on the
// operational path: a Suspect agent is still in the gather set (it is polled,
// not heartbeated), so the first slot where its state report gets through
// restores Healthy — no probeDead round involved.
func TestSuspectHealsThroughRealGather(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	sw := &switchConn{inner: conns[1]}
	conns[1] = sw
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := New(in.Cluster, g, conns,
		WithFailurePolicy(Degrade),
		WithHealthThresholds(1, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	run := func(t0 int) {
		t.Helper()
		if _, _, _, err := ct.RunSlot(t0, in.Workload.Arrivals(t0)); err != nil {
			t.Fatalf("slot %d: %v", t0, err)
		}
	}
	run(0)
	if got := ct.Health()[1]; got != Healthy {
		t.Fatalf("after clean slot: health = %v, want %v", got, Healthy)
	}
	sw.down.Store(true)
	run(1)
	if got := ct.Health()[1]; got != Suspect {
		t.Fatalf("after failed gather: health = %v, want %v", got, Suspect)
	}
	sw.down.Store(false)
	run(2)
	if got := ct.Health()[1]; got != Healthy {
		t.Fatalf("after answered gather: health = %v, want %v", got, Healthy)
	}
}

// TestShadowSeedApplyRestore exercises the shadow-ledger bookkeeping that
// degraded mode rests on: seeding from a report, replaying an allocation, and
// exact equality checks.
func TestShadowSeedApplyRestore(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, _ := core.New(in.Cluster, core.Config{V: 7.5})
	ct, err := New(in.Cluster, g, conns, WithFailurePolicy(Degrade))
	if err != nil {
		t.Fatal(err)
	}
	j := in.Cluster.J()
	lens := make([]float64, j)
	for jj := range lens {
		lens[jj] = float64(3 * (jj + 1))
	}
	if ct.recs[0].synced {
		t.Fatal("shadow synced before any report")
	}
	ct.seedShadow(0, 0, lens)
	if !ct.recs[0].synced {
		t.Fatal("seedShadow did not mark the shadow synced")
	}
	if !ct.lensEqualShadow(0, lens) {
		t.Fatalf("shadow lens %v != seed %v", ct.shadowLens(0), lens)
	}

	process := make([]float64, j)
	routed := make([]int, j)
	process[0], routed[0] = 2, 5 // pop 2 of 3, then push 5
	process[1] = 100             // over-processing caps at content
	popped, _ := ct.applyShadow(0, 1, process, routed)
	if popped[0] != 2 || popped[1] != lens[1] {
		t.Errorf("popped = %v, want [2 %v ...]", popped, lens[1])
	}
	got := ct.shadowLens(0)
	if got[0] != lens[0]-2+5 || got[1] != 0 {
		t.Errorf("post-apply lens = %v", got)
	}
	if ct.lensEqualShadow(0, lens) {
		t.Error("stale lens still compare equal after apply")
	}
	if ct.lensEqualShadow(0, lens[:1]) {
		t.Error("short lens compare equal")
	}
}
