package controller

import (
	"testing"

	"grefar/internal/core"
	"grefar/internal/telemetry"
)

func TestParseFailurePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FailurePolicy
		ok   bool
	}{
		{"strict", Strict, true},
		{"degrade", Degrade, true},
		{"", Strict, false},
		{"lenient", Strict, false},
	} {
		got, err := ParseFailurePolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseFailurePolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseFailurePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err == nil && got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}

func TestHealthConfigDefaults(t *testing.T) {
	hc := HealthConfig{}.withDefaults()
	if hc.SuspectAfter != 1 || hc.DeadAfter != 3 {
		t.Errorf("defaults = %+v, want SuspectAfter 1, DeadAfter 3", hc)
	}
	// DeadAfter is clamped to at least SuspectAfter.
	hc = HealthConfig{SuspectAfter: 5, DeadAfter: 2}.withDefaults()
	if hc.DeadAfter != 5 {
		t.Errorf("DeadAfter = %d, want clamped to 5", hc.DeadAfter)
	}
}

func TestAgentHealthString(t *testing.T) {
	for h, want := range map[AgentHealth]string{
		Healthy: "healthy", Suspect: "suspect", Dead: "dead", Rejoining: "rejoining",
	} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

// TestHealthStateMachineTransitions drives the failure/success counters
// directly and checks the threshold-governed transitions, including the gauge
// published per agent.
func TestHealthStateMachineTransitions(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ct, err := New(in.Cluster, g, conns,
		WithFailurePolicy(Degrade),
		WithHealthThresholds(2, 4),
		WithHealthMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}

	want := func(i int, s AgentHealth) {
		t.Helper()
		if got := ct.Health()[i]; got != s {
			t.Fatalf("agent %d health = %v, want %v", i, got, s)
		}
	}

	want(0, Healthy)
	ct.recordFailure(0)
	want(0, Healthy) // one failure is below SuspectAfter=2
	ct.recordFailure(0)
	want(0, Suspect)
	ct.recordFailure(0)
	want(0, Suspect)
	ct.recordFailure(0)
	want(0, Dead) // fourth consecutive failure reaches DeadAfter=4
	ct.recordSuccess(0)
	want(0, Healthy)

	// A success mid-streak resets the counter entirely.
	ct.recordFailure(1)
	ct.recordSuccess(1)
	ct.recordFailure(1)
	want(1, Healthy)

	// Rejoining is left by recordSuccess only.
	ct.setState(2, Rejoining)
	ct.recordSuccess(2)
	want(2, Healthy)

	if v := ct.metrics.failures.With(dcLabel(0)).Value(); v != 4 {
		t.Errorf("failure counter = %v, want 4", v)
	}
	if v := ct.metrics.state.With(dcLabel(0)).Value(); v != float64(Healthy) {
		t.Errorf("state gauge = %v, want %v", v, float64(Healthy))
	}
}

// TestShadowSeedApplyRestore exercises the shadow-ledger bookkeeping that
// degraded mode rests on: seeding from a report, replaying an allocation, and
// exact equality checks.
func TestShadowSeedApplyRestore(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 10, false)
	defer cleanup()
	g, _ := core.New(in.Cluster, core.Config{V: 7.5})
	ct, err := New(in.Cluster, g, conns, WithFailurePolicy(Degrade))
	if err != nil {
		t.Fatal(err)
	}
	j := in.Cluster.J()
	lens := make([]float64, j)
	for jj := range lens {
		lens[jj] = float64(3 * (jj + 1))
	}
	if ct.recs[0].synced {
		t.Fatal("shadow synced before any report")
	}
	ct.seedShadow(0, 0, lens)
	if !ct.recs[0].synced {
		t.Fatal("seedShadow did not mark the shadow synced")
	}
	if !ct.lensEqualShadow(0, lens) {
		t.Fatalf("shadow lens %v != seed %v", ct.shadowLens(0), lens)
	}

	process := make([]float64, j)
	routed := make([]int, j)
	process[0], routed[0] = 2, 5 // pop 2 of 3, then push 5
	process[1] = 100             // over-processing caps at content
	popped, _ := ct.applyShadow(0, 1, process, routed)
	if popped[0] != 2 || popped[1] != lens[1] {
		t.Errorf("popped = %v, want [2 %v ...]", popped, lens[1])
	}
	got := ct.shadowLens(0)
	if got[0] != lens[0]-2+5 || got[1] != 0 {
		t.Errorf("post-apply lens = %v", got)
	}
	if ct.lensEqualShadow(0, lens) {
		t.Error("stale lens still compare equal after apply")
	}
	if ct.lensEqualShadow(0, lens[:1]) {
		t.Error("short lens compare equal")
	}
}
