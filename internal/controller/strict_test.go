package controller

import (
	"errors"
	"sync/atomic"
	"testing"

	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/transport"
)

// allocGateConn is an agent connection whose allocate calls fail while the
// gate is tripped — before reaching the agent, so nothing executes. This
// models a scatter-phase outage (the controller decided, the dispatch never
// arrived), which under Strict must abort the slot without side effects.
type allocGateConn struct {
	inner AgentConn
	fail  *atomic.Bool
}

func (g allocGateConn) Call(kind string, reqBody, respBody any) error {
	if kind == transport.KindAllocate && g.fail.Load() {
		return errors.New("allocGateConn: scatter failed")
	}
	return g.inner.Call(kind, reqBody, respBody)
}

// TestStrictAllocateAbortConservesJobs pins the Strict-mode atomicity
// contract: an allocate-phase failure aborts the slot AFTER the central
// ledger pops, so without checkpoint/restore a retried slot would pop the
// same jobs twice and leak them out of the system. The test runs a faulty
// system (one slot fails at scatter, then is retried) side by side with a
// clean one on identical inputs, with the invariant checker attached to the
// faulty run: the retried slot must leave a trajectory byte-identical to the
// clean run's, and the checker's conservation and flow rules must hold on
// every applied slot.
func TestStrictAllocateAbortConservesJobs(t *testing.T) {
	const slots, failAt = 12, 6
	inClean, connsClean, cleanupClean := buildSystem(t, slots, false)
	defer cleanupClean()
	inFaulty, connsFaulty, cleanupFaulty := buildSystem(t, slots, false)
	defer cleanupFaulty()

	var fail atomic.Bool
	gated := make([]AgentConn, len(connsFaulty))
	for i := range connsFaulty {
		gated[i] = allocGateConn{inner: connsFaulty[i], fail: &fail}
	}

	gClean, err := core.New(inClean.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	gFaulty, err := core.New(inFaulty.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ctClean, err := New(inClean.Cluster, gClean, connsClean) // default policy: Strict
	if err != nil {
		t.Fatal(err)
	}
	ck := invariant.NewChecker(inFaulty.Cluster, invariant.CheckerOptions{})
	ctFaulty, err := New(inFaulty.Cluster, gFaulty, gated, WithObserver(ck))
	if err != nil {
		t.Fatal(err)
	}

	for tt := 0; tt < slots; tt++ {
		arrivals := inClean.Workload.Arrivals(tt)
		_, _, acksClean, err := ctClean.RunSlot(tt, arrivals)
		if err != nil {
			t.Fatalf("clean slot %d: %v", tt, err)
		}

		if tt == failAt {
			before := ctFaulty.CentralLens()
			fail.Store(true)
			if _, _, _, err := ctFaulty.RunSlot(tt, arrivals); err == nil {
				t.Fatalf("slot %d: scatter outage did not abort the strict slot", tt)
			}
			fail.Store(false)
			after := ctFaulty.CentralLens()
			for j := range before {
				if after[j] != before[j] {
					t.Fatalf("slot %d abort moved central queue %d: %v -> %v (popped jobs not restored)",
						tt, j, before[j], after[j])
				}
			}
		}
		_, _, acksFaulty, err := ctFaulty.RunSlot(tt, arrivals)
		if err != nil {
			t.Fatalf("faulty slot %d (retry): %v", tt, err)
		}

		for i := range acksClean {
			if acksClean[i].Energy != acksFaulty[i].Energy {
				t.Fatalf("slot %d agent %d: energy %v != clean %v", tt, i, acksFaulty[i].Energy, acksClean[i].Energy)
			}
			for j := range acksClean[i].Processed {
				if acksClean[i].Processed[j] != acksFaulty[i].Processed[j] {
					t.Fatalf("slot %d agent %d job %d: processed %v != clean %v",
						tt, i, j, acksFaulty[i].Processed[j], acksClean[i].Processed[j])
				}
			}
		}
	}

	cleanLens, faultyLens := ctClean.CentralLens(), ctFaulty.CentralLens()
	for j := range cleanLens {
		if cleanLens[j] != faultyLens[j] {
			t.Errorf("final central queue %d: %v != clean %v", j, faultyLens[j], cleanLens[j])
		}
	}
	if err := ck.Err(); err != nil {
		t.Errorf("invariant check on failed-then-retried trajectory: %v", err)
	}
}
