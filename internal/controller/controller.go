// Package controller implements the central scheduler node of the
// distributed GreFar deployment. Each slot it polls every data-center agent
// for its state report, assembles the global view x(t) and the queue
// backlogs Theta(t), runs any sched.Scheduler (normally GreFar), and pushes
// the per-site allocation decisions back to the agents. The controller owns
// only the central queues Q_j; the local queues q_{i,j} live on the agents.
package controller

import (
	"context"
	"fmt"
	"sync"

	"grefar/internal/fairness"
	"grefar/internal/metrics"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/workload"
)

// AgentConn abstracts the RPC connection to one agent, enabling in-process
// fakes in tests.
type AgentConn interface {
	Call(kind string, reqBody, respBody any) error
}

// ContextAgentConn is an AgentConn whose calls honor a context — retrying
// connections (transport.ReconnectClient) abort their backoff loop when the
// control loop is canceled, so SIGINT does not wait out reconnection delays
// to an unreachable agent. Connections without context support degrade to
// plain Call.
type ContextAgentConn interface {
	AgentConn
	CallContext(ctx context.Context, kind string, reqBody, respBody any) error
}

var (
	_ AgentConn        = (*transport.Client)(nil)
	_ ContextAgentConn = (*transport.ReconnectClient)(nil)
)

// callAgent routes a call through CallContext when both a context and a
// context-aware connection are available.
func callAgent(ctx context.Context, a AgentConn, kind string, reqBody, respBody any) error {
	if ctx != nil {
		if ca, ok := a.(ContextAgentConn); ok {
			return ca.CallContext(ctx, kind, reqBody, respBody)
		}
	}
	return a.Call(kind, reqBody, respBody)
}

// Controller drives the distributed control loop.
type Controller struct {
	cluster *model.Cluster
	sch     sched.Scheduler
	agents  []AgentConn // index i is data center i
	fair    fairness.Function
	obs     telemetry.SlotObserver

	central []queue.Ledger
}

// Option customizes a Controller.
type Option func(*Controller)

// WithObserver attaches a telemetry observer: the controller emits one
// SlotEvent per slot (origin "controller") from its run loop, carrying the
// realized energy, fairness, flows, and the central backlog it owns.
func WithObserver(obs telemetry.SlotObserver) Option {
	return func(ct *Controller) { ct.obs = obs }
}

// New builds a controller. agents[i] must be connected to the agent serving
// data center i.
func New(c *model.Cluster, sch sched.Scheduler, agents []AgentConn, opts ...Option) (*Controller, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if sch == nil {
		return nil, fmt.Errorf("nil scheduler")
	}
	if len(agents) != c.N() {
		return nil, fmt.Errorf("got %d agents, cluster has %d data centers", len(agents), c.N())
	}
	weights := make([]float64, c.M())
	for m, a := range c.Accounts {
		weights[m] = a.Weight
	}
	fair, err := fairness.NewQuadratic(weights)
	if err != nil {
		return nil, err
	}
	ct := &Controller{
		cluster: c,
		sch:     sch,
		agents:  agents,
		fair:    fair,
		central: make([]queue.Ledger, c.J()),
	}
	for _, opt := range opts {
		opt(ct)
	}
	return ct, nil
}

// CentralLens returns the central backlog per job type.
func (ct *Controller) CentralLens() []float64 {
	out := make([]float64, len(ct.central))
	for j := range ct.central {
		out[j] = ct.central[j].Len()
	}
	return out
}

// Snapshot serializes the controller's central queue state so a restarted
// controller can resume exactly where the previous one stopped; pair it with
// agent.Agent.Snapshot for whole-system checkpoints.
func (ct *Controller) Snapshot() ([]byte, error) {
	return queue.SnapshotLedgers(ct.central)
}

// Restore replaces the central queue state from a Snapshot of a controller
// for the same cluster.
func (ct *Controller) Restore(snapshot []byte) error {
	return queue.RestoreLedgers(ct.central, snapshot)
}

// gatherStates polls all agents concurrently for their slot reports.
func (ct *Controller) gatherStates(ctx context.Context, t int) ([]transport.StateReport, error) {
	reports := make([]transport.StateReport, len(ct.agents))
	errs := make([]error, len(ct.agents))
	var wg sync.WaitGroup
	for i, a := range ct.agents {
		wg.Add(1)
		go func(i int, a AgentConn) {
			defer wg.Done()
			errs[i] = callAgent(ctx, a, transport.KindState, transport.StateRequest{Slot: t}, &reports[i])
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("agent %d state: %w", i, err)
		}
		if reports[i].DataCenter != i {
			return nil, fmt.Errorf("agent %d reported site %d", i, reports[i].DataCenter)
		}
	}
	return reports, nil
}

// RunSlot executes one slot of the control loop: gather, decide, allocate,
// then admit the slot's new arrivals into the central queues. It returns the
// acks for metric aggregation along with the decided action and state.
func (ct *Controller) RunSlot(t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	return ct.RunSlotContext(context.Background(), t, arrivals)
}

// RunSlotContext is RunSlot with cancellation threaded into the agent calls:
// connections implementing ContextAgentConn abort their retry loops as soon
// as ctx is done, so an interrupt does not wait out reconnection backoff.
func (ct *Controller) RunSlotContext(ctx context.Context, t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	c := ct.cluster
	if len(arrivals) != c.J() {
		return nil, nil, nil, fmt.Errorf("got %d arrival counts, want %d", len(arrivals), c.J())
	}
	reports, err := ct.gatherStates(ctx, t)
	if err != nil {
		return nil, nil, nil, err
	}

	st := model.NewState(c)
	lengths := queue.Lengths{
		Central: ct.CentralLens(),
		Local:   make([][]float64, c.N()),
	}
	for i, rep := range reports {
		if len(rep.Avail) != c.K(i) || len(rep.QueueLens) != c.J() {
			return nil, nil, nil, fmt.Errorf("agent %d report has wrong dimensions", i)
		}
		copy(st.Avail[i], rep.Avail)
		st.Price[i] = rep.Price
		lengths.Local[i] = rep.QueueLens
	}
	if err := st.Validate(c); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: bad assembled state: %w", t, err)
	}

	act, err := ct.sch.Decide(t, st, lengths)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: %s: %w", t, ct.sch.Name(), err)
	}
	if err := act.Validate(c, st); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: infeasible action: %w", t, err)
	}

	// Dispatch jobs from the central queues, capped at queue content,
	// consumed in data-center order exactly like queue.Set.Apply so the
	// distributed run is bit-identical to the single-process simulator.
	routed := make([][]int, c.N())
	for i := range routed {
		routed[i] = make([]int, c.J())
	}
	for j := 0; j < c.J(); j++ {
		for i := 0; i < c.N(); i++ {
			r := act.Route[i][j]
			if r <= 0 {
				continue
			}
			popped, _ := ct.central[j].Pop(t, float64(r))
			routed[i][j] = int(popped)
		}
	}

	acks := make([]transport.AllocateAck, c.N())
	errsA := make([]error, c.N())
	var wg sync.WaitGroup
	for i, a := range ct.agents {
		wg.Add(1)
		go func(i int, a AgentConn) {
			defer wg.Done()
			errsA[i] = callAgent(ctx, a, transport.KindAllocate, transport.Allocate{
				Slot:    t,
				Route:   routed[i],
				Process: act.Process[i],
				Busy:    act.Busy[i],
			}, &acks[i])
		}(i, a)
	}
	wg.Wait()
	for i, err := range errsA {
		if err != nil {
			return nil, nil, nil, fmt.Errorf("agent %d allocate: %w", i, err)
		}
	}

	for j, a := range arrivals {
		if a < 0 {
			return nil, nil, nil, fmt.Errorf("negative arrivals for job type %d", j)
		}
		ct.central[j].Push(t, float64(a))
	}
	return act, st, acks, nil
}

// Run drives the loop for the given horizon and aggregates the same metrics
// as the single-process simulator, so results are directly comparable.
func (ct *Controller) Run(slots int, wl workload.Generator) (*sim.Result, error) {
	return ct.RunContext(context.Background(), slots, wl)
}

// RunContext is Run with cancellation: the loop stops between slots as soon
// as the context is done, returning an error wrapping the context's error.
func (ct *Controller) RunContext(ctx context.Context, slots int, wl workload.Generator) (*sim.Result, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("horizon %d is not positive", slots)
	}
	if wl == nil {
		return nil, fmt.Errorf("nil workload")
	}
	c := ct.cluster
	energy := metrics.NewRunning(false)
	fairScore := metrics.NewRunning(false)
	localDelay := make([]*metrics.Ratio, c.N())
	workAvg := make([]*metrics.Running, c.N())
	for i := range localDelay {
		localDelay[i] = metrics.NewRatio(false)
		workAvg[i] = metrics.NewRunning(false)
	}

	res := &sim.Result{SchedulerName: ct.sch.Name(), Slots: slots}
	for t := 0; t < slots; t++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("slot %d: run canceled: %w", t, err)
			}
		}
		arrivals := wl.Arrivals(t)
		act, st, acks, err := ct.RunSlotContext(ctx, t, arrivals)
		if err != nil {
			return nil, err
		}
		var e, slotProcessed float64
		energyPerDC := make([]float64, c.N())
		alloc := make([]float64, c.M())
		for i, ack := range acks {
			e += ack.Energy
			energyPerDC[i] = ack.Energy
			var dSum, dCount float64
			for j := 0; j < c.J(); j++ {
				dSum += ack.DelaySum[j]
				dCount += ack.Processed[j]
				alloc[c.JobTypes[j].Account] += ack.Processed[j] * c.JobTypes[j].Demand
				res.TotalProcessed += ack.Processed[j]
				slotProcessed += ack.Processed[j]
			}
			localDelay[i].Add(dSum, dCount)
			workAvg[i].Add(ack.Work)
		}
		slotFairness := ct.fair.Score(alloc, st.TotalResource(c))
		energy.Add(e)
		fairScore.Add(slotFairness)
		var slotArrived float64
		for _, a := range arrivals {
			res.TotalArrived += float64(a)
			slotArrived += float64(a)
		}
		if ct.obs != nil {
			ev := telemetry.SlotEvent{
				Slot:       t,
				Origin:     telemetry.OriginController,
				Scheduler:  ct.sch.Name(),
				DataCenter: -1,
				Energy:     e,
				// The controller owns only the central queues; local
				// backlogs are reported by the agents themselves.
				EnergyPerDC: energyPerDC,
				Fairness:    slotFairness,
				Arrived:     slotArrived,
				Processed:   slotProcessed,
			}
			for _, q := range ct.CentralLens() {
				ev.CentralBacklog += q
			}
			ev.TotalBacklog = ev.CentralBacklog
			ct.obs.ObserveSlot(ev)
		}
		_ = act
	}
	res.AvgEnergy = energy.Mean()
	res.AvgFairness = fairScore.Mean()
	res.AvgLocalDelay = make([]float64, c.N())
	res.AvgWorkPerDC = make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		res.AvgLocalDelay[i] = localDelay[i].Value()
		res.AvgWorkPerDC[i] = workAvg[i].Mean()
	}
	var backlog float64
	for j := range ct.central {
		backlog += ct.central[j].Len()
	}
	res.FinalBacklog = backlog // central only; agents hold the rest
	return res, nil
}
