// Package controller implements the central scheduler node of the
// distributed GreFar deployment. Each slot it polls every data-center agent
// for its state report, assembles the global view x(t) and the queue
// backlogs Theta(t), runs any sched.Scheduler (normally GreFar), and pushes
// the per-site allocation decisions back to the agents. The controller owns
// only the central queues Q_j; the local queues q_{i,j} live on the agents.
package controller

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"grefar/internal/fairness"
	"grefar/internal/metrics"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/workload"
)

// AgentConn abstracts the RPC connection to one agent, enabling in-process
// fakes in tests.
type AgentConn interface {
	Call(kind string, reqBody, respBody any) error
}

// ContextAgentConn is an AgentConn whose calls honor a context — retrying
// connections (transport.ReconnectClient) abort their backoff loop when the
// control loop is canceled, so SIGINT does not wait out reconnection delays
// to an unreachable agent. Connections without context support degrade to
// plain Call.
type ContextAgentConn interface {
	AgentConn
	CallContext(ctx context.Context, kind string, reqBody, respBody any) error
}

var (
	_ AgentConn        = (*transport.Client)(nil)
	_ ContextAgentConn = (*transport.ReconnectClient)(nil)
)

// callAgent routes a call through CallContext when both a context and a
// context-aware connection are available.
func callAgent(ctx context.Context, a AgentConn, kind string, reqBody, respBody any) error {
	if ctx != nil {
		if ca, ok := a.(ContextAgentConn); ok {
			return ca.CallContext(ctx, kind, reqBody, respBody)
		}
	}
	return a.Call(kind, reqBody, respBody)
}

// Controller drives the distributed control loop.
type Controller struct {
	cluster *model.Cluster
	sch     sched.Scheduler
	agents  []AgentConn // index i is data center i
	fair    fairness.Function
	obs     telemetry.SlotObserver
	detail  bool // obs asked for SlotEvent.Detail

	central []queue.Ledger

	// Fault tolerance: the failure policy and thresholds, the health tracker
	// owning the per-agent records and shadow ledgers, and the optional
	// metric surface. recs aliases the tracker's records for in-package use.
	health  HealthConfig
	tracker *Tracker
	recs    []agentRecord
	metrics *healthMetrics
}

// Option customizes a Controller.
type Option func(*Controller)

// WithObserver attaches a telemetry observer: the controller emits one
// SlotEvent per slot (origin "controller") from its run loop, carrying the
// realized energy, fairness, flows, and the central backlog it owns.
func WithObserver(obs telemetry.SlotObserver) Option {
	return func(ct *Controller) { ct.obs = obs }
}

// New builds a controller. agents[i] must be connected to the agent serving
// data center i.
func New(c *model.Cluster, sch sched.Scheduler, agents []AgentConn, opts ...Option) (*Controller, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if sch == nil {
		return nil, fmt.Errorf("nil scheduler")
	}
	if len(agents) != c.N() {
		return nil, fmt.Errorf("got %d agents, cluster has %d data centers", len(agents), c.N())
	}
	weights := make([]float64, c.M())
	for m, a := range c.Accounts {
		weights[m] = a.Weight
	}
	fair, err := fairness.NewQuadratic(weights)
	if err != nil {
		return nil, err
	}
	ct := &Controller{
		cluster: c,
		sch:     sch,
		agents:  agents,
		fair:    fair,
		central: make([]queue.Ledger, c.J()),
	}
	for _, opt := range opts {
		opt(ct)
	}
	ct.health = ct.health.withDefaults()
	ct.detail = telemetry.WantsDetail(ct.obs)
	ct.tracker = newTracker(c, agents, ct.health, ct.metrics)
	ct.recs = ct.tracker.recs
	return ct, nil
}

// CentralLens returns the central backlog per job type.
func (ct *Controller) CentralLens() []float64 {
	out := make([]float64, len(ct.central))
	for j := range ct.central {
		out[j] = ct.central[j].Len()
	}
	return out
}

// Snapshot serializes the controller's central queue state so a restarted
// controller can resume exactly where the previous one stopped; pair it with
// agent.Agent.Snapshot for whole-system checkpoints.
func (ct *Controller) Snapshot() ([]byte, error) {
	return queue.SnapshotLedgers(ct.central)
}

// Restore replaces the central queue state from a Snapshot of a controller
// for the same cluster.
func (ct *Controller) Restore(snapshot []byte) error {
	return queue.RestoreLedgers(ct.central, snapshot)
}

// errAgentDead marks an agent excluded from the gather set because its
// health state is Dead; the slot opens with a probe for it instead.
var errAgentDead = errors.New("agent is dead; probing instead of gathering")

// gatherStates polls every non-Dead agent concurrently for its slot report
// and validates each report's shape on receipt (site echo, slot echo,
// dimensions, finite non-negative values), so a malformed or truncated
// report surfaces as a typed per-agent error — wrapping
// transport.ErrMalformedReport — before it can corrupt the assembled state.
// errs[i] is nil exactly when reports[i] is usable.
func (ct *Controller) gatherStates(ctx context.Context, t int) ([]transport.StateReport, []error) {
	reports := make([]transport.StateReport, len(ct.agents))
	errs := make([]error, len(ct.agents))
	var wg sync.WaitGroup
	for i := range ct.agents {
		if ct.recs[i].state == Dead {
			errs[i] = errAgentDead
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ct.callAgentTimed(ctx, i, transport.KindState, transport.StateRequest{Slot: t}, &reports[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = reports[i].Validate(i, t, ct.cluster.K(i), ct.cluster.J())
		}(i)
	}
	wg.Wait()
	return reports, errs
}

// joinAgentErrors aggregates per-agent failures into one error naming every
// failed agent, so a multi-agent outage is diagnosable from a single message.
func joinAgentErrors(phase string, errs []error) error {
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("agent %d %s: %w", i, phase, err))
		}
	}
	return errors.Join(joined...)
}

// RunSlot executes one slot of the control loop: gather, decide, allocate,
// then admit the slot's new arrivals into the central queues. It returns the
// acks for metric aggregation along with the decided action and state.
func (ct *Controller) RunSlot(t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	return ct.RunSlotContext(context.Background(), t, arrivals)
}

// RunSlotContext is RunSlot with cancellation threaded into the agent calls:
// connections implementing ContextAgentConn abort their retry loops as soon
// as ctx is done, so an interrupt does not wait out reconnection backoff.
//
// Under FailurePolicy Strict, any agent failure aborts the slot with every
// per-agent error joined. Under Degrade the slot always completes: failed or
// malformed-reporting agents are masked out of the decision (availability
// zero, price and local queues frozen at the shadow), arrivals still enter
// the central queues, Dead agents are heartbeat-probed and re-synced onto
// the shadow state when they answer, and the emitted slot evidence is
// derived from the shadow ledgers so the invariant checker passes on every
// applied slot — the masked state is a valid cluster instance.
func (ct *Controller) RunSlotContext(ctx context.Context, t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	c := ct.cluster
	if len(arrivals) != c.J() {
		return nil, nil, nil, fmt.Errorf("got %d arrival counts, want %d", len(arrivals), c.J())
	}
	for j, a := range arrivals {
		if a < 0 {
			return nil, nil, nil, fmt.Errorf("negative arrivals for job type %d", j)
		}
	}
	degrade := ct.health.Policy == Degrade
	if degrade {
		ct.probeDead(ctx, t)
	}
	reports, errs := ct.gatherStates(ctx, t)
	if !degrade {
		if err := joinAgentErrors("state", errs); err != nil {
			return nil, nil, nil, err
		}
		for i := range reports {
			ct.trueUpShadow(i, t, &reports[i])
		}
	}

	// Resolve each report into the health machine; ok[i] marks the agents
	// participating in this slot's decision.
	ok := make([]bool, c.N())
	for i := range errs {
		if !degrade {
			ok[i] = true
			continue
		}
		if errs[i] != nil {
			ct.recordFailure(i)
			continue
		}
		ok[i] = ct.resolveReport(ctx, i, t, &reports[i])
	}

	// Assemble the global state: reported availability and price for
	// participating agents; masked agents contribute zero availability (no
	// routing, no processing there) and their last known price, with local
	// queues frozen at the shadow. Participating agents' shadow lengths are
	// bit-identical to their reports, so the scheduler's view is unchanged
	// from the historical report-driven assembly.
	st := model.NewState(c)
	pre := queue.Lengths{
		Central: ct.CentralLens(),
		Local:   make([][]float64, c.N()),
	}
	var masked []int
	for i := 0; i < c.N(); i++ {
		if ok[i] {
			copy(st.Avail[i], reports[i].Avail)
			st.Price[i] = reports[i].Price
		} else {
			st.Price[i] = ct.recs[i].lastPrice
			masked = append(masked, i)
		}
		pre.Local[i] = ct.shadowLens(i)
	}
	if err := st.Validate(c); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: bad assembled state: %w", t, err)
	}
	if ct.metrics != nil && len(masked) > 0 {
		ct.metrics.degraded.Inc()
	}

	act, err := ct.sch.Decide(t, st, pre)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: %s: %w", t, ct.sch.Name(), err)
	}
	// Flow around masked sites: zero their rows so the realized dispatch,
	// the queue dynamics, and the invariant checker's nominal-route checks
	// all agree that nothing moved there. (Schedulers route on backlog, not
	// only on availability, so a masked site's rows are not automatically
	// zero.)
	for _, i := range masked {
		for j := range act.Route[i] {
			act.Route[i][j] = 0
			act.Process[i][j] = 0
		}
		for k := range act.Busy[i] {
			act.Busy[i][k] = 0
		}
	}
	if err := act.Validate(c, st); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: infeasible action: %w", t, err)
	}

	// Under Strict an allocate failure below aborts the slot, but the central
	// pops happen first: without a checkpoint the caller's retry of the same
	// slot would pop the same jobs twice and break conservation. Clone the
	// ledgers now and restore them on the abort path so a failed slot leaves
	// the central queues exactly as it found them. (Degrade never aborts.)
	var checkpoint []queue.Ledger
	if !degrade {
		checkpoint = make([]queue.Ledger, c.J())
		for j := range ct.central {
			checkpoint[j] = ct.central[j].Clone()
		}
	}

	// Dispatch jobs from the central queues, capped at queue content,
	// consumed in data-center order exactly like queue.Set.Apply so the
	// distributed run is bit-identical to the single-process simulator.
	routed := make([][]int, c.N())
	routedF := make([][]float64, c.N())
	for i := range routed {
		routed[i] = make([]int, c.J())
		routedF[i] = make([]float64, c.J())
	}
	for j := 0; j < c.J(); j++ {
		for i := 0; i < c.N(); i++ {
			r := act.Route[i][j]
			if r <= 0 {
				continue
			}
			popped, _ := ct.central[j].Pop(t, float64(r))
			routed[i][j] = int(popped)
			routedF[i][j] = popped
		}
	}

	acks := make([]transport.AllocateAck, c.N())
	errsA := make([]error, c.N())
	var wg sync.WaitGroup
	for i := range ct.agents {
		if !ok[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errsA[i] = ct.callAgentTimed(ctx, i, transport.KindAllocate, transport.Allocate{
				Slot:    t,
				Route:   routed[i],
				Process: act.Process[i],
				Busy:    act.Busy[i],
			}, &acks[i])
		}(i)
	}
	wg.Wait()
	if !degrade {
		if err := joinAgentErrors("allocate", errsA); err != nil {
			copy(ct.central, checkpoint)
			return nil, nil, nil, err
		}
	}

	// Advance the shadow ledgers with exactly the dispatched operations, in
	// agent execution order, and settle each agent's ack: verified against
	// the shadow for responders, synthesized from it when the response was
	// lost (the dispatch is authoritative — a rejoining agent is restored
	// onto this trajectory), zero for masked agents whose rows were zeroed.
	processedEv := make([][]float64, c.N())
	for i := 0; i < c.N(); i++ {
		popped, delays := ct.applyShadow(i, t, act.Process[i], routed[i])
		processedEv[i] = popped
		if !ok[i] {
			acks[i] = transport.AllocateAck{
				Slot:      t,
				Processed: make([]float64, c.J()),
				DelaySum:  make([]float64, c.J()),
			}
			continue
		}
		if errsA[i] != nil {
			ct.recordFailure(i)
			acks[i] = ct.synthesizeAck(i, t, popped, delays, st, act)
			continue
		}
		for j := range popped {
			if acks[i].Processed[j] != popped[j] {
				// The agent executed something other than the shadow replay:
				// its trajectory forked mid-slot (e.g. it restarted behind a
				// reconnecting transport and answered empty). De-sync the
				// shadow so the next report re-seeds it.
				ct.tracker.NoteDivergence(i)
				break
			}
		}
	}

	for j, a := range arrivals {
		ct.central[j].Push(t, float64(a))
	}

	ct.emitSlot(t, arrivals, st, act, pre, routedF, processedEv, acks, masked)
	return act, st, acks, nil
}

// emitSlot assembles and publishes the controller's per-slot telemetry
// event, including the full slot evidence when the observer asks for it.
func (ct *Controller) emitSlot(t int, arrivals []int, st *model.State, act *model.Action,
	pre queue.Lengths, routedF, processedEv [][]float64, acks []transport.AllocateAck, masked []int) {
	if ct.obs == nil {
		return
	}
	c := ct.cluster
	post := queue.Lengths{Central: ct.CentralLens(), Local: make([][]float64, c.N())}
	for i := 0; i < c.N(); i++ {
		post.Local[i] = ct.shadowLens(i)
	}
	ev := telemetry.SlotEvent{
		Slot:       t,
		Origin:     telemetry.OriginController,
		Scheduler:  ct.sch.Name(),
		DataCenter: -1,
		Degraded:   masked,
	}
	ev.EnergyPerDC = make([]float64, c.N())
	alloc := make([]float64, c.M())
	for i, ack := range acks {
		ev.Energy += ack.Energy
		ev.EnergyPerDC[i] = ack.Energy
	}
	for i := range processedEv {
		for j, p := range processedEv[i] {
			ev.Processed += p
			alloc[c.JobTypes[j].Account] += p * c.JobTypes[j].Demand
		}
	}
	ev.Fairness = ct.fair.Score(alloc, st.TotalResource(c))
	for _, a := range arrivals {
		ev.Arrived += float64(a)
	}
	for _, v := range post.Central {
		ev.CentralBacklog += v
	}
	ev.LocalBacklog = make([]float64, c.N())
	for i := range post.Local {
		for _, v := range post.Local[i] {
			ev.LocalBacklog[i] += v
		}
	}
	ev.TotalBacklog = ev.CentralBacklog
	for _, v := range ev.LocalBacklog {
		ev.TotalBacklog += v
	}
	if ct.detail {
		ev.Detail = &telemetry.SlotDetail{
			State:     st.Clone(),
			Action:    act.Clone(),
			Pre:       pre.Clone(),
			Post:      post.Clone(),
			Arrivals:  append([]int(nil), arrivals...),
			Routed:    routedF,
			Processed: processedEv,
		}
	}
	ct.obs.ObserveSlot(ev)
}

// Run drives the loop for the given horizon and aggregates the same metrics
// as the single-process simulator, so results are directly comparable.
func (ct *Controller) Run(slots int, wl workload.Generator) (*sim.Result, error) {
	return ct.RunContext(context.Background(), slots, wl)
}

// RunContext is Run with cancellation: the loop stops between slots as soon
// as the context is done, returning an error wrapping the context's error.
func (ct *Controller) RunContext(ctx context.Context, slots int, wl workload.Generator) (*sim.Result, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("horizon %d is not positive", slots)
	}
	if wl == nil {
		return nil, fmt.Errorf("nil workload")
	}
	c := ct.cluster
	energy := metrics.NewRunning(false)
	fairScore := metrics.NewRunning(false)
	localDelay := make([]*metrics.Ratio, c.N())
	workAvg := make([]*metrics.Running, c.N())
	for i := range localDelay {
		localDelay[i] = metrics.NewRatio(false)
		workAvg[i] = metrics.NewRunning(false)
	}

	res := &sim.Result{SchedulerName: ct.sch.Name(), Slots: slots}
	for t := 0; t < slots; t++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("slot %d: run canceled: %w", t, err)
			}
		}
		arrivals := wl.Arrivals(t)
		// Per-slot telemetry (origin "controller") is emitted inside
		// RunSlotContext so degraded-mode evidence reaches observers even when
		// the loop is driven slot-by-slot (grefar-serve, experiments).
		_, st, acks, err := ct.RunSlotContext(ctx, t, arrivals)
		if err != nil {
			return nil, err
		}
		var e float64
		alloc := make([]float64, c.M())
		for i, ack := range acks {
			e += ack.Energy
			var dSum, dCount float64
			for j := 0; j < c.J(); j++ {
				dSum += ack.DelaySum[j]
				dCount += ack.Processed[j]
				alloc[c.JobTypes[j].Account] += ack.Processed[j] * c.JobTypes[j].Demand
				res.TotalProcessed += ack.Processed[j]
			}
			localDelay[i].Add(dSum, dCount)
			workAvg[i].Add(ack.Work)
		}
		energy.Add(e)
		fairScore.Add(ct.fair.Score(alloc, st.TotalResource(c)))
		for _, a := range arrivals {
			res.TotalArrived += float64(a)
		}
	}
	res.AvgEnergy = energy.Mean()
	res.AvgFairness = fairScore.Mean()
	res.AvgLocalDelay = make([]float64, c.N())
	res.AvgWorkPerDC = make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		res.AvgLocalDelay[i] = localDelay[i].Value()
		res.AvgWorkPerDC[i] = workAvg[i].Mean()
	}
	var backlog float64
	for j := range ct.central {
		backlog += ct.central[j].Len()
	}
	res.FinalBacklog = backlog // central only; agents hold the rest
	return res, nil
}
