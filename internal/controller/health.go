package controller

import (
	"context"
	"fmt"
	"strconv"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// AgentHealth is the controller's classification of one agent's liveness,
// driven by the outcome of every RPC the control loop issues (state gathers,
// allocations, heartbeat probes). Transitions happen at slot boundaries, so
// the health trajectory is a deterministic function of the per-slot call
// outcomes, never of wall-clock timing.
type AgentHealth int

const (
	// Healthy: the agent answered its last interaction; it is in the gather
	// set and receives allocations.
	Healthy AgentHealth = iota
	// Suspect: recent consecutive failures (>= HealthConfig.SuspectAfter).
	// The agent is still polled each slot but its site is masked out of the
	// scheduling decision until it answers again.
	Suspect
	// Dead: failures reached HealthConfig.DeadAfter. The agent leaves the
	// gather set entirely; each slot starts with a single heartbeat probe
	// instead, and a successful probe moves it to Rejoining.
	Dead
	// Rejoining: a probe succeeded and the agent has been re-synced onto the
	// controller's shadow queue state; the next successful state report
	// completes the rejoin and restores Healthy.
	Rejoining
)

// String renders the state for logs and metrics.
func (h AgentHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Rejoining:
		return "rejoining"
	}
	return fmt.Sprintf("AgentHealth(%d)", int(h))
}

// FailurePolicy selects how the control loop reacts to agent failures.
type FailurePolicy int

const (
	// Strict aborts the slot on any agent failure — the historical behavior,
	// and the right one for tests and experiments that demand the full
	// cluster every slot.
	Strict FailurePolicy = iota
	// Degrade keeps scheduling around failed agents: their availability is
	// masked to zero, their local queues are frozen at the controller's
	// shadow of the last known state, arrivals keep entering the central
	// queues, and rejoining agents are re-synced. This is the default for
	// the grefar-controller daemon.
	Degrade
)

// String renders the policy for flags and logs.
func (p FailurePolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "strict"
}

// ParseFailurePolicy converts a flag value ("strict" or "degrade").
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "strict":
		return Strict, nil
	case "degrade":
		return Degrade, nil
	}
	return Strict, fmt.Errorf("unknown failure policy %q (want strict or degrade)", s)
}

// HealthConfig tunes the health state machine. The zero value is Strict with
// the default thresholds.
type HealthConfig struct {
	// Policy selects Strict (abort on failure) or Degrade (mask and carry on).
	Policy FailurePolicy
	// SuspectAfter is the number of consecutive failed interactions before an
	// agent is marked Suspect (default 1: the first failure masks it).
	SuspectAfter int
	// DeadAfter is the number of consecutive failed interactions before an
	// agent is marked Dead and moved from gathering to probing (default 3).
	DeadAfter int
}

// withDefaults fills zero thresholds.
func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.SuspectAfter <= 0 {
		hc.SuspectAfter = 1
	}
	if hc.DeadAfter <= 0 {
		hc.DeadAfter = 3
	}
	if hc.DeadAfter < hc.SuspectAfter {
		hc.DeadAfter = hc.SuspectAfter
	}
	return hc
}

// WithFailurePolicy selects the controller's reaction to agent failures.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(ct *Controller) { ct.health.Policy = p }
}

// WithHealthThresholds sets the consecutive-failure counts that demote an
// agent to Suspect and Dead (non-positive values keep the defaults 1 and 3).
func WithHealthThresholds(suspectAfter, deadAfter int) Option {
	return func(ct *Controller) {
		ct.health.SuspectAfter = suspectAfter
		ct.health.DeadAfter = deadAfter
	}
}

// WithHealthMetrics publishes the controller's fault-tolerance signals to the
// registry: per-agent health gauges and failure counters, degraded-slot
// counters, re-sync counters, and per-agent RPC round-trip histograms.
func WithHealthMetrics(reg *telemetry.Registry) Option {
	return func(ct *Controller) {
		if reg == nil {
			return
		}
		ct.metrics = newHealthMetrics(reg)
	}
}

// newHealthMetrics registers (or re-resolves — registration is idempotent per
// name) the health metric families. Trackers sharing one registry share the
// families, so a partitioned control plane reports into the same series a
// single controller would.
func newHealthMetrics(reg *telemetry.Registry) *healthMetrics {
	return &healthMetrics{
		state: reg.Gauge("grefar_controller_agent_health",
			"Agent health state (0 healthy, 1 suspect, 2 dead, 3 rejoining).", "dc"),
		failures: reg.Counter("grefar_controller_agent_failures_total",
			"Failed agent interactions (state gathers, allocations, probes).", "dc"),
		resyncs: reg.Counter("grefar_controller_agent_resyncs_total",
			"Queue-state restores pushed to rejoining or diverged agents.", "dc"),
		divergences: reg.Counter("grefar_controller_agent_divergences_total",
			"Slots where an agent's reported queues disagreed with the controller's shadow.", "dc"),
		degraded: reg.Counter("grefar_controller_degraded_slots_total",
			"Slots scheduled with at least one agent masked out.").With(),
		rtt: reg.Histogram("grefar_controller_agent_rtt_seconds",
			"Agent RPC round-trip time.",
			[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}, "dc"),
	}
}

// healthMetrics is the registry surface of the health machinery.
type healthMetrics struct {
	state       *telemetry.GaugeVec
	failures    *telemetry.CounterVec
	resyncs     *telemetry.CounterVec
	divergences *telemetry.CounterVec
	degraded    *telemetry.Counter
	rtt         *telemetry.HistogramVec
}

// agentRecord is the controller's per-agent bookkeeping: the health state
// machine plus the shadow ledgers — an exact controller-side mirror of the
// agent's local queues, advanced by replaying the same pops and pushes the
// controller dispatches. The shadow is what lets the controller freeze a
// failed site's queues at their true values, synthesize the outcome of an
// allocation whose ack was lost, and restore a rejoining agent byte-exactly.
type agentRecord struct {
	state AgentHealth
	// fails counts consecutive failed interactions; any success resets it.
	fails int
	// synced reports whether the shadow ledgers are authoritative: false
	// until the first valid report seeds them.
	synced bool
	// lastPrice is the most recent reported electricity price, frozen into
	// the assembled state while the agent is masked.
	lastPrice float64
	// shadow mirrors the agent's local FIFO ledgers per job type.
	shadow []queue.Ledger
}

// Health returns the per-agent health states (index i is data center i).
func (ct *Controller) Health() []AgentHealth { return ct.tracker.Health() }

// dcLabel renders the agent index as a metric label.
func dcLabel(i int) string { return strconv.Itoa(i) }

// The health machinery itself lives on Tracker (tracker.go) so the
// partitioned control plane can drive it per-owned-agent. The Controller
// keeps thin delegations for its own slot loop and the package tests.

func (ct *Controller) setState(i int, s AgentHealth) { ct.tracker.setState(i, s) }
func (ct *Controller) recordFailure(i int)           { ct.tracker.RecordFailure(i) }
func (ct *Controller) recordSuccess(i int)           { ct.tracker.RecordSuccess(i) }

func (ct *Controller) shadowLens(i int) []float64 { return ct.tracker.ShadowLens(i) }

func (ct *Controller) seedShadow(i, slot int, lens []float64) { ct.tracker.seedShadow(i, slot, lens) }

func (ct *Controller) applyShadow(i, t int, process []float64, routed []int) (popped, delays []float64) {
	return ct.tracker.ApplyShadow(i, t, process, routed)
}

func (ct *Controller) lensEqualShadow(i int, lens []float64) bool {
	return ct.tracker.lensEqualShadow(i, lens)
}

func (ct *Controller) probeDead(ctx context.Context, t int) { ct.tracker.ProbeDead(ctx, t, nil) }

func (ct *Controller) resolveReport(ctx context.Context, i, t int, rep *transport.StateReport) bool {
	return ct.tracker.ResolveReport(ctx, i, t, rep)
}

func (ct *Controller) trueUpShadow(i, t int, rep *transport.StateReport) {
	ct.tracker.TrueUpShadow(i, t, rep)
}

func (ct *Controller) synthesizeAck(i, t int, popped, delays []float64, st *model.State, act *model.Action) transport.AllocateAck {
	return ct.tracker.SynthesizeAck(i, t, popped, delays, st, act)
}

func (ct *Controller) callAgentTimed(ctx context.Context, i int, kind string, reqBody, respBody any) error {
	return ct.tracker.Call(ctx, i, kind, reqBody, respBody)
}
