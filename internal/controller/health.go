package controller

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"grefar/internal/queue"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// AgentHealth is the controller's classification of one agent's liveness,
// driven by the outcome of every RPC the control loop issues (state gathers,
// allocations, heartbeat probes). Transitions happen at slot boundaries, so
// the health trajectory is a deterministic function of the per-slot call
// outcomes, never of wall-clock timing.
type AgentHealth int

const (
	// Healthy: the agent answered its last interaction; it is in the gather
	// set and receives allocations.
	Healthy AgentHealth = iota
	// Suspect: recent consecutive failures (>= HealthConfig.SuspectAfter).
	// The agent is still polled each slot but its site is masked out of the
	// scheduling decision until it answers again.
	Suspect
	// Dead: failures reached HealthConfig.DeadAfter. The agent leaves the
	// gather set entirely; each slot starts with a single heartbeat probe
	// instead, and a successful probe moves it to Rejoining.
	Dead
	// Rejoining: a probe succeeded and the agent has been re-synced onto the
	// controller's shadow queue state; the next successful state report
	// completes the rejoin and restores Healthy.
	Rejoining
)

// String renders the state for logs and metrics.
func (h AgentHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Rejoining:
		return "rejoining"
	}
	return fmt.Sprintf("AgentHealth(%d)", int(h))
}

// FailurePolicy selects how the control loop reacts to agent failures.
type FailurePolicy int

const (
	// Strict aborts the slot on any agent failure — the historical behavior,
	// and the right one for tests and experiments that demand the full
	// cluster every slot.
	Strict FailurePolicy = iota
	// Degrade keeps scheduling around failed agents: their availability is
	// masked to zero, their local queues are frozen at the controller's
	// shadow of the last known state, arrivals keep entering the central
	// queues, and rejoining agents are re-synced. This is the default for
	// the grefar-controller daemon.
	Degrade
)

// String renders the policy for flags and logs.
func (p FailurePolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "strict"
}

// ParseFailurePolicy converts a flag value ("strict" or "degrade").
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "strict":
		return Strict, nil
	case "degrade":
		return Degrade, nil
	}
	return Strict, fmt.Errorf("unknown failure policy %q (want strict or degrade)", s)
}

// HealthConfig tunes the health state machine. The zero value is Strict with
// the default thresholds.
type HealthConfig struct {
	// Policy selects Strict (abort on failure) or Degrade (mask and carry on).
	Policy FailurePolicy
	// SuspectAfter is the number of consecutive failed interactions before an
	// agent is marked Suspect (default 1: the first failure masks it).
	SuspectAfter int
	// DeadAfter is the number of consecutive failed interactions before an
	// agent is marked Dead and moved from gathering to probing (default 3).
	DeadAfter int
}

// withDefaults fills zero thresholds.
func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.SuspectAfter <= 0 {
		hc.SuspectAfter = 1
	}
	if hc.DeadAfter <= 0 {
		hc.DeadAfter = 3
	}
	if hc.DeadAfter < hc.SuspectAfter {
		hc.DeadAfter = hc.SuspectAfter
	}
	return hc
}

// WithFailurePolicy selects the controller's reaction to agent failures.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(ct *Controller) { ct.health.Policy = p }
}

// WithHealthThresholds sets the consecutive-failure counts that demote an
// agent to Suspect and Dead (non-positive values keep the defaults 1 and 3).
func WithHealthThresholds(suspectAfter, deadAfter int) Option {
	return func(ct *Controller) {
		ct.health.SuspectAfter = suspectAfter
		ct.health.DeadAfter = deadAfter
	}
}

// WithHealthMetrics publishes the controller's fault-tolerance signals to the
// registry: per-agent health gauges and failure counters, degraded-slot
// counters, re-sync counters, and per-agent RPC round-trip histograms.
func WithHealthMetrics(reg *telemetry.Registry) Option {
	return func(ct *Controller) {
		if reg == nil {
			return
		}
		ct.metrics = &healthMetrics{
			state: reg.Gauge("grefar_controller_agent_health",
				"Agent health state (0 healthy, 1 suspect, 2 dead, 3 rejoining).", "dc"),
			failures: reg.Counter("grefar_controller_agent_failures_total",
				"Failed agent interactions (state gathers, allocations, probes).", "dc"),
			resyncs: reg.Counter("grefar_controller_agent_resyncs_total",
				"Queue-state restores pushed to rejoining or diverged agents.", "dc"),
			divergences: reg.Counter("grefar_controller_agent_divergences_total",
				"Slots where an agent's reported queues disagreed with the controller's shadow.", "dc"),
			degraded: reg.Counter("grefar_controller_degraded_slots_total",
				"Slots scheduled with at least one agent masked out.").With(),
			rtt: reg.Histogram("grefar_controller_agent_rtt_seconds",
				"Agent RPC round-trip time.",
				[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}, "dc"),
		}
	}
}

// healthMetrics is the registry surface of the health machinery.
type healthMetrics struct {
	state       *telemetry.GaugeVec
	failures    *telemetry.CounterVec
	resyncs     *telemetry.CounterVec
	divergences *telemetry.CounterVec
	degraded    *telemetry.Counter
	rtt         *telemetry.HistogramVec
}

// agentRecord is the controller's per-agent bookkeeping: the health state
// machine plus the shadow ledgers — an exact controller-side mirror of the
// agent's local queues, advanced by replaying the same pops and pushes the
// controller dispatches. The shadow is what lets the controller freeze a
// failed site's queues at their true values, synthesize the outcome of an
// allocation whose ack was lost, and restore a rejoining agent byte-exactly.
type agentRecord struct {
	state AgentHealth
	// fails counts consecutive failed interactions; any success resets it.
	fails int
	// synced reports whether the shadow ledgers are authoritative: false
	// until the first valid report seeds them.
	synced bool
	// lastPrice is the most recent reported electricity price, frozen into
	// the assembled state while the agent is masked.
	lastPrice float64
	// shadow mirrors the agent's local FIFO ledgers per job type.
	shadow []queue.Ledger
}

// Health returns the per-agent health states (index i is data center i).
func (ct *Controller) Health() []AgentHealth {
	out := make([]AgentHealth, len(ct.recs))
	for i := range ct.recs {
		out[i] = ct.recs[i].state
	}
	return out
}

// dcLabel renders the agent index as a metric label.
func dcLabel(i int) string { return strconv.Itoa(i) }

// setState moves an agent's state machine and publishes the gauge.
func (ct *Controller) setState(i int, s AgentHealth) {
	ct.recs[i].state = s
	if ct.metrics != nil {
		ct.metrics.state.With(dcLabel(i)).Set(float64(s))
	}
}

// recordFailure notes one failed interaction with agent i and advances the
// state machine: SuspectAfter consecutive failures mask the agent,
// DeadAfter move it from gathering to probing.
func (ct *Controller) recordFailure(i int) {
	rec := &ct.recs[i]
	rec.fails++
	if ct.metrics != nil {
		ct.metrics.failures.With(dcLabel(i)).Inc()
	}
	switch {
	case rec.fails >= ct.health.DeadAfter:
		ct.setState(i, Dead)
	case rec.fails >= ct.health.SuspectAfter:
		ct.setState(i, Suspect)
	}
}

// recordSuccess notes a fully-resolved interaction: the failure streak ends
// and the agent is Healthy again.
func (ct *Controller) recordSuccess(i int) {
	ct.recs[i].fails = 0
	if ct.recs[i].state != Healthy {
		ct.setState(i, Healthy)
	}
}

// shadowLens returns the shadow backlog per job type for agent i (zeros
// before the shadow is seeded).
func (ct *Controller) shadowLens(i int) []float64 {
	out := make([]float64, ct.cluster.J())
	for j := range ct.recs[i].shadow {
		out[j] = ct.recs[i].shadow[j].Len()
	}
	return out
}

// seedShadow replaces agent i's shadow with fresh ledgers holding the given
// backlogs as single cohorts arriving at the current slot. Amounts are exact
// from here on; waiting times of the pre-existing backlog are approximated as
// zero, which only affects synthesized delay sums, never job counts.
func (ct *Controller) seedShadow(i, slot int, lens []float64) {
	rec := &ct.recs[i]
	rec.shadow = make([]queue.Ledger, ct.cluster.J())
	for j, v := range lens {
		rec.shadow[j].Push(slot, v)
	}
	rec.synced = true
}

// applyShadow replays one slot's allocation on agent i's shadow ledgers in
// exactly the agent's execution order (pop then push, per job type) and
// returns the realized processed amounts and delay sums. Because the shadow
// held the same cohorts, the popped amounts are bit-identical to what the
// agent itself reports.
func (ct *Controller) applyShadow(i, t int, process []float64, routed []int) (popped, delays []float64) {
	rec := &ct.recs[i]
	j := ct.cluster.J()
	popped = make([]float64, j)
	delays = make([]float64, j)
	for jj := 0; jj < j; jj++ {
		p, d := rec.shadow[jj].Pop(t, process[jj])
		popped[jj], delays[jj] = p, d
		rec.shadow[jj].Push(t, float64(routed[jj]))
	}
	return popped, delays
}

// lensEqualShadow reports whether the agent-reported queue lengths coincide
// exactly with the shadow. Exact comparison is correct: the shadow replays
// the identical float operations the agent performs, so any difference means
// the trajectories genuinely forked (restart, missed allocation, meddling).
func (ct *Controller) lensEqualShadow(i int, lens []float64) bool {
	if len(lens) != ct.cluster.J() {
		return false
	}
	for j := range ct.recs[i].shadow {
		if ct.recs[i].shadow[j].Len() != lens[j] {
			return false
		}
	}
	return true
}

// resync pushes the controller's shadow queue state onto agent i and
// verifies the agent landed exactly on it. With an unseeded shadow there is
// nothing authoritative to push; the next state report seeds it instead.
func (ct *Controller) resync(ctx context.Context, i, t int) error {
	rec := &ct.recs[i]
	if !rec.synced {
		return nil
	}
	snap, err := queue.SnapshotLedgers(rec.shadow)
	if err != nil {
		return fmt.Errorf("snapshot shadow: %w", err)
	}
	var ack transport.RestoreAck
	if err := ct.callAgentTimed(ctx, i, transport.KindRestore, transport.RestoreRequest{Slot: t, Snapshot: snap}, &ack); err != nil {
		return err
	}
	if !ct.lensEqualShadow(i, ack.QueueLens) {
		return fmt.Errorf("restore verification failed: agent echoed %v, shadow holds %v", ack.QueueLens, ct.shadowLens(i))
	}
	if ct.metrics != nil {
		ct.metrics.resyncs.With(dcLabel(i)).Inc()
	}
	return nil
}

// probeDead opens the slot by heartbeating every Dead agent once. A probe
// answer re-syncs the agent onto the shadow state and moves it to Rejoining,
// so the following gather can complete the rejoin; a failed probe (or a
// failed re-sync) keeps it Dead.
//
// Probes run concurrently, like the gather: a mass outage must cost one probe
// timeout per slot, not one per dead agent — at fleet scale a sequential
// probe loop would stall the slot for minutes. The RPCs (ping, then restore)
// touch only agent i's record, which nothing else reads during the probe
// phase; state transitions are applied serially in index order afterwards so
// the health machine stays single-threaded.
func (ct *Controller) probeDead(ctx context.Context, t int) {
	probed := make([]bool, len(ct.recs))
	joined := make([]bool, len(ct.recs))
	var wg sync.WaitGroup
	for i := range ct.recs {
		if ct.recs[i].state != Dead {
			continue
		}
		probed[i] = true
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong transport.Ping
			if err := ct.callAgentTimed(ctx, i, transport.KindPing, transport.Ping{Nonce: uint64(t), Slot: t}, &pong); err != nil {
				return
			}
			joined[i] = ct.resync(ctx, i, t) == nil
		}(i)
	}
	wg.Wait()
	for i := range ct.recs {
		switch {
		case !probed[i]:
		case joined[i]:
			ct.setState(i, Rejoining)
		default:
			ct.recordFailure(i)
		}
	}
}

// resolveReport folds one valid state report into the health machine under
// the Degrade policy and reports whether the agent participates in this
// slot's scheduling decision.
//
// The trust rules: a Healthy agent owns its physical queues, so a shadow
// mismatch (an externally restored or replaced agent) re-seeds the shadow
// from the report; a Suspect or Rejoining agent diverged while the
// controller was scheduling around it, so the shadow — the trajectory every
// emitted slot already accounted for — is authoritative and is restored onto
// the agent before it rejoins.
func (ct *Controller) resolveReport(ctx context.Context, i, t int, rep *transport.StateReport) bool {
	rec := &ct.recs[i]
	if !rec.synced {
		ct.seedShadow(i, t, rep.QueueLens)
		rec.lastPrice = rep.Price
		ct.recordSuccess(i)
		return true
	}
	equal := ct.lensEqualShadow(i, rep.QueueLens)
	if rec.state == Healthy {
		if !equal {
			if ct.metrics != nil {
				ct.metrics.divergences.With(dcLabel(i)).Inc()
			}
			ct.seedShadow(i, t, rep.QueueLens)
		}
		rec.lastPrice = rep.Price
		ct.recordSuccess(i)
		return true
	}
	// Suspect or Rejoining: let it back in only on the shadow trajectory.
	if !equal {
		if err := ct.resync(ctx, i, t); err != nil {
			ct.recordFailure(i)
			return false
		}
	}
	rec.lastPrice = rep.Price
	ct.recordSuccess(i)
	return true
}

// trueUpShadow keeps the shadow exact under the Strict policy, where the
// health machine is inert: seed on first contact, re-seed if the agent's
// trajectory forked (an agent restarted behind a reconnecting transport).
func (ct *Controller) trueUpShadow(i, t int, rep *transport.StateReport) {
	rec := &ct.recs[i]
	if !rec.synced || !ct.lensEqualShadow(i, rep.QueueLens) {
		ct.seedShadow(i, t, rep.QueueLens)
	}
	rec.lastPrice = rep.Price
}

// callAgentTimed is callAgent with the round-trip recorded in the RTT
// histogram when health metrics are wired.
func (ct *Controller) callAgentTimed(ctx context.Context, i int, kind string, reqBody, respBody any) error {
	if ct.metrics == nil {
		return callAgent(ctx, ct.agents[i], kind, reqBody, respBody)
	}
	start := time.Now()
	err := callAgent(ctx, ct.agents[i], kind, reqBody, respBody)
	ct.metrics.rtt.With(dcLabel(i)).Observe(time.Since(start).Seconds())
	return err
}
