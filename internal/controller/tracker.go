package controller

import (
	"context"
	"fmt"
	"sync"
	"time"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// Tracker is the per-agent health machine factored out of the Controller so
// that a partitioned control plane can drive the identical fault-tolerance
// semantics: the Healthy/Suspect/Dead/Rejoining state machine, the shadow
// ledgers mirroring each agent's local queues, probe/resync/rejoin, and the
// divergence bookkeeping.
//
// One Tracker serves any number of concurrent drivers as long as each drives
// a disjoint set of agent indices: every method touches only the record of
// the agent it is passed (plus concurrency-safe metric families), so
// partitions operating on their owned agents never race. Methods taking a
// single index are not safe for concurrent use on the SAME index.
type Tracker struct {
	cluster *model.Cluster
	conns   []AgentConn
	cfg     HealthConfig
	recs    []agentRecord
	metrics *healthMetrics
}

// NewTracker builds a health tracker over the given agent connections.
// conns[i] must serve data center i. A nil registry disables metrics.
func NewTracker(c *model.Cluster, conns []AgentConn, cfg HealthConfig, reg *telemetry.Registry) *Tracker {
	var m *healthMetrics
	if reg != nil {
		m = newHealthMetrics(reg)
	}
	return newTracker(c, conns, cfg, m)
}

func newTracker(c *model.Cluster, conns []AgentConn, cfg HealthConfig, m *healthMetrics) *Tracker {
	tk := &Tracker{
		cluster: c,
		conns:   conns,
		cfg:     cfg.withDefaults(),
		recs:    make([]agentRecord, len(conns)),
		metrics: m,
	}
	for i := range tk.recs {
		tk.recs[i].shadow = make([]queue.Ledger, c.J())
	}
	if tk.metrics != nil {
		// Publish the healthy baseline so every per-agent series exists
		// before the first fault, not lazily on the first transition.
		for i := range tk.recs {
			tk.metrics.state.With(dcLabel(i)).Set(float64(Healthy))
		}
	}
	return tk
}

// N returns the number of tracked agents.
func (tk *Tracker) N() int { return len(tk.recs) }

// Config returns the tracker's (defaulted) health configuration.
func (tk *Tracker) Config() HealthConfig { return tk.cfg }

// Health returns the per-agent health states (index i is data center i).
func (tk *Tracker) Health() []AgentHealth {
	out := make([]AgentHealth, len(tk.recs))
	for i := range tk.recs {
		out[i] = tk.recs[i].state
	}
	return out
}

// State returns agent i's health state.
func (tk *Tracker) State(i int) AgentHealth { return tk.recs[i].state }

// LastPrice returns agent i's most recent reported electricity price.
func (tk *Tracker) LastPrice(i int) float64 { return tk.recs[i].lastPrice }

// setState moves an agent's state machine and publishes the gauge.
func (tk *Tracker) setState(i int, s AgentHealth) {
	tk.recs[i].state = s
	if tk.metrics != nil {
		tk.metrics.state.With(dcLabel(i)).Set(float64(s))
	}
}

// RecordFailure notes one failed interaction with agent i and advances the
// state machine: SuspectAfter consecutive failures mask the agent,
// DeadAfter move it from gathering to probing.
func (tk *Tracker) RecordFailure(i int) {
	rec := &tk.recs[i]
	rec.fails++
	if tk.metrics != nil {
		tk.metrics.failures.With(dcLabel(i)).Inc()
	}
	switch {
	case rec.fails >= tk.cfg.DeadAfter:
		tk.setState(i, Dead)
	case rec.fails >= tk.cfg.SuspectAfter:
		tk.setState(i, Suspect)
	}
}

// RecordSuccess notes a fully-resolved interaction: the failure streak ends
// and the agent is Healthy again.
func (tk *Tracker) RecordSuccess(i int) {
	tk.recs[i].fails = 0
	if tk.recs[i].state != Healthy {
		tk.setState(i, Healthy)
	}
}

// NoteDivergence records that agent i's physical trajectory forked from the
// shadow (a mismatched report or ack): the divergence counter ticks and the
// shadow is de-synced so the next valid report re-seeds it.
func (tk *Tracker) NoteDivergence(i int) {
	if tk.metrics != nil {
		tk.metrics.divergences.With(dcLabel(i)).Inc()
	}
	tk.recs[i].synced = false
}

// NoteDegraded counts one slot scheduled with at least one agent masked out.
func (tk *Tracker) NoteDegraded() {
	if tk.metrics != nil {
		tk.metrics.degraded.Inc()
	}
}

// ShadowLens returns the shadow backlog per job type for agent i (zeros
// before the shadow is seeded).
func (tk *Tracker) ShadowLens(i int) []float64 {
	out := make([]float64, tk.cluster.J())
	for j := range tk.recs[i].shadow {
		out[j] = tk.recs[i].shadow[j].Len()
	}
	return out
}

// seedShadow replaces agent i's shadow with fresh ledgers holding the given
// backlogs as single cohorts arriving at the current slot. Amounts are exact
// from here on; waiting times of the pre-existing backlog are approximated as
// zero, which only affects synthesized delay sums, never job counts.
func (tk *Tracker) seedShadow(i, slot int, lens []float64) {
	rec := &tk.recs[i]
	rec.shadow = make([]queue.Ledger, tk.cluster.J())
	for j, v := range lens {
		rec.shadow[j].Push(slot, v)
	}
	rec.synced = true
}

// ApplyShadow replays one slot's allocation on agent i's shadow ledgers in
// exactly the agent's execution order (pop then push, per job type) and
// returns the realized processed amounts and delay sums. Because the shadow
// held the same cohorts, the popped amounts are bit-identical to what the
// agent itself reports.
func (tk *Tracker) ApplyShadow(i, t int, process []float64, routed []int) (popped, delays []float64) {
	rec := &tk.recs[i]
	j := tk.cluster.J()
	popped = make([]float64, j)
	delays = make([]float64, j)
	for jj := 0; jj < j; jj++ {
		p, d := rec.shadow[jj].Pop(t, process[jj])
		popped[jj], delays[jj] = p, d
		rec.shadow[jj].Push(t, float64(routed[jj]))
	}
	return popped, delays
}

// lensEqualShadow reports whether the agent-reported queue lengths coincide
// exactly with the shadow. Exact comparison is correct: the shadow replays
// the identical float operations the agent performs, so any difference means
// the trajectories genuinely forked (restart, missed allocation, meddling).
func (tk *Tracker) lensEqualShadow(i int, lens []float64) bool {
	if len(lens) != tk.cluster.J() {
		return false
	}
	for j := range tk.recs[i].shadow {
		if tk.recs[i].shadow[j].Len() != lens[j] {
			return false
		}
	}
	return true
}

// resync pushes the controller's shadow queue state onto agent i and
// verifies the agent landed exactly on it. With an unseeded shadow there is
// nothing authoritative to push; the next state report seeds it instead.
func (tk *Tracker) resync(ctx context.Context, i, t int) error {
	rec := &tk.recs[i]
	if !rec.synced {
		return nil
	}
	snap, err := queue.SnapshotLedgers(rec.shadow)
	if err != nil {
		return fmt.Errorf("snapshot shadow: %w", err)
	}
	var ack transport.RestoreAck
	if err := tk.Call(ctx, i, transport.KindRestore, transport.RestoreRequest{Slot: t, Snapshot: snap}, &ack); err != nil {
		return err
	}
	if !tk.lensEqualShadow(i, ack.QueueLens) {
		return fmt.Errorf("restore verification failed: agent echoed %v, shadow holds %v", ack.QueueLens, tk.ShadowLens(i))
	}
	if tk.metrics != nil {
		tk.metrics.resyncs.With(dcLabel(i)).Inc()
	}
	return nil
}

// ProbeDead opens the slot by heartbeating every Dead agent in owned once
// (owned nil probes all tracked agents). A probe answer re-syncs the agent
// onto the shadow state and moves it to Rejoining, so the following gather
// can complete the rejoin; a failed probe (or a failed re-sync) keeps it
// Dead.
//
// Probes run concurrently, like the gather: a mass outage must cost one probe
// timeout per slot, not one per dead agent — at fleet scale a sequential
// probe loop would stall the slot for minutes. The RPCs (ping, then restore)
// touch only agent i's record, which nothing else reads during the probe
// phase; state transitions are applied serially in index order afterwards so
// the health machine stays single-threaded per driver.
func (tk *Tracker) ProbeDead(ctx context.Context, t int, owned []int) {
	if owned == nil {
		owned = make([]int, len(tk.recs))
		for i := range owned {
			owned[i] = i
		}
	}
	probed := make([]bool, len(tk.recs))
	joined := make([]bool, len(tk.recs))
	var wg sync.WaitGroup
	for _, i := range owned {
		if tk.recs[i].state != Dead {
			continue
		}
		probed[i] = true
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong transport.Ping
			if err := tk.Call(ctx, i, transport.KindPing, transport.Ping{Nonce: uint64(t), Slot: t}, &pong); err != nil {
				return
			}
			joined[i] = tk.resync(ctx, i, t) == nil
		}(i)
	}
	wg.Wait()
	for _, i := range owned {
		switch {
		case !probed[i]:
		case joined[i]:
			tk.setState(i, Rejoining)
		default:
			tk.RecordFailure(i)
		}
	}
}

// ResolveReport folds one valid state report into the health machine under
// the Degrade policy and reports whether the agent participates in this
// slot's scheduling decision.
//
// The trust rules: a Healthy agent owns its physical queues, so a shadow
// mismatch (an externally restored or replaced agent) re-seeds the shadow
// from the report; a Suspect or Rejoining agent diverged while the
// controller was scheduling around it, so the shadow — the trajectory every
// emitted slot already accounted for — is authoritative and is restored onto
// the agent before it rejoins.
func (tk *Tracker) ResolveReport(ctx context.Context, i, t int, rep *transport.StateReport) bool {
	rec := &tk.recs[i]
	if !rec.synced {
		tk.seedShadow(i, t, rep.QueueLens)
		rec.lastPrice = rep.Price
		tk.RecordSuccess(i)
		return true
	}
	equal := tk.lensEqualShadow(i, rep.QueueLens)
	if rec.state == Healthy {
		if !equal {
			if tk.metrics != nil {
				tk.metrics.divergences.With(dcLabel(i)).Inc()
			}
			tk.seedShadow(i, t, rep.QueueLens)
		}
		rec.lastPrice = rep.Price
		tk.RecordSuccess(i)
		return true
	}
	// Suspect or Rejoining: let it back in only on the shadow trajectory.
	if !equal {
		if err := tk.resync(ctx, i, t); err != nil {
			tk.RecordFailure(i)
			return false
		}
	}
	rec.lastPrice = rep.Price
	tk.RecordSuccess(i)
	return true
}

// TrueUpShadow keeps the shadow exact under the Strict policy, where the
// health machine is inert: seed on first contact, re-seed if the agent's
// trajectory forked (an agent restarted behind a reconnecting transport).
func (tk *Tracker) TrueUpShadow(i, t int, rep *transport.StateReport) {
	rec := &tk.recs[i]
	if !rec.synced || !tk.lensEqualShadow(i, rep.QueueLens) {
		tk.seedShadow(i, t, rep.QueueLens)
	}
	rec.lastPrice = rep.Price
}

// SynthesizeAck reconstructs what a non-responding agent did (or will be
// restored to have done) from the shadow replay: processed counts and delay
// sums come from the shadow pops, energy from the reported price and the
// dispatched busy-server decision, work from the processed demand. For an
// agent that executed the allocation but lost the response, this is
// bit-identical to the ack it would have sent.
func (tk *Tracker) SynthesizeAck(i, t int, popped, delays []float64, st *model.State, act *model.Action) transport.AllocateAck {
	c := tk.cluster
	ack := transport.AllocateAck{Slot: t, Processed: popped, DelaySum: delays}
	for j := range popped {
		ack.Work += popped[j] * c.JobTypes[j].Demand
	}
	for k, b := range act.Busy[i] {
		ack.Energy += st.Price[i] * b * c.DataCenters[i].Servers[k].Power
	}
	return ack
}

// Call issues one RPC to agent i with the round-trip recorded in the RTT
// histogram when health metrics are wired.
func (tk *Tracker) Call(ctx context.Context, i int, kind string, reqBody, respBody any) error {
	if tk.metrics == nil {
		return callAgent(ctx, tk.conns[i], kind, reqBody, respBody)
	}
	start := time.Now()
	err := callAgent(ctx, tk.conns[i], kind, reqBody, respBody)
	tk.metrics.rtt.With(dcLabel(i)).Observe(time.Since(start).Seconds())
	return err
}

// ObserveRTT records one round-trip duration for agent i — the hook for
// callers that batch many agents' calls onto one wire and apportion the
// batch round-trip themselves.
func (tk *Tracker) ObserveRTT(i int, d time.Duration) {
	if tk.metrics != nil {
		tk.metrics.rtt.With(dcLabel(i)).Observe(d.Seconds())
	}
}
