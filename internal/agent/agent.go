// Package agent implements the per-data-center agent of the distributed
// GreFar deployment. An agent owns one site: it observes its local
// environment (server availability and electricity price), holds the site's
// local job queues q_{i,j}, and executes the allocation decisions the
// central controller sends each slot. The central scheduler never touches
// jobs directly; it only sees the agent's state reports — exactly the
// information structure the paper's model assumes.
package agent

import (
	"fmt"
	"net"
	"sync"

	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/queue"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// Config describes one agent.
type Config struct {
	// Cluster is the shared system description.
	Cluster *model.Cluster
	// DataCenter is this agent's site index i.
	DataCenter int
	// Price is the local electricity price source.
	Price price.Source
	// Availability is the local server availability process. Only this
	// site's row is consulted.
	Availability availability.Process
	// Observer, when non-nil, receives one telemetry.SlotEvent per executed
	// allocation (origin "agent") with this site's backlog, energy, and
	// processed counts. Nil costs nothing.
	Observer telemetry.SlotObserver
}

// Agent is the running site daemon. It is safe for concurrent RPCs, though
// the controller drives it with one request at a time.
type Agent struct {
	cfg Config

	mu      sync.Mutex
	ledgers []queue.Ledger // local FIFO per job type

	// lastSlot/lastAck cache the most recent executed allocation so a
	// duplicated or retransmitted Allocate for the same slot is answered
	// from the cache instead of popping and pushing the ledgers twice.
	// -1 means no allocation has been executed since start or restore.
	lastSlot int
	lastAck  transport.AllocateAck
}

// New validates the configuration and builds an agent.
func New(cfg Config) (*Agent, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("nil cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.DataCenter < 0 || cfg.DataCenter >= cfg.Cluster.N() {
		return nil, fmt.Errorf("data center %d out of range [0,%d)", cfg.DataCenter, cfg.Cluster.N())
	}
	if cfg.Price == nil || cfg.Availability == nil {
		return nil, fmt.Errorf("price and availability sources are required")
	}
	return &Agent{
		cfg:      cfg,
		ledgers:  make([]queue.Ledger, cfg.Cluster.J()),
		lastSlot: -1,
	}, nil
}

// Handle implements transport.Handler dispatch for this agent.
func (a *Agent) Handle(kind string, body []byte) (any, error) {
	switch kind {
	case transport.KindPing:
		var p transport.Ping
		if err := transport.Unmarshal(body, &p); err != nil {
			return nil, err
		}
		return p, nil
	case transport.KindState:
		var req transport.StateRequest
		if err := transport.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return a.state(req.Slot), nil
	case transport.KindAllocate:
		var req transport.Allocate
		if err := transport.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return a.allocate(req)
	case transport.KindRestore:
		var req transport.RestoreRequest
		if err := transport.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return a.restoreRPC(req)
	default:
		return nil, fmt.Errorf("unknown message kind %q", kind)
	}
}

// state builds the slot report.
func (a *Agent) state(slot int) transport.StateReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.cfg.Cluster
	rep := transport.StateReport{
		Slot:       slot,
		DataCenter: a.cfg.DataCenter,
		Price:      a.cfg.Price.At(slot),
		Avail:      append([]float64(nil), a.cfg.Availability.At(slot)[a.cfg.DataCenter]...),
		QueueLens:  make([]float64, c.J()),
	}
	for j := range a.ledgers {
		rep.QueueLens[j] = a.ledgers[j].Len()
	}
	return rep
}

// allocate executes a slot decision: it processes queued jobs first (capped
// at queue content, matching the paper's queue dynamics where jobs routed in
// a slot are not processable until the next), then admits the routed jobs,
// and reports energy, processed counts and delay sums.
func (a *Agent) allocate(req transport.Allocate) (transport.AllocateAck, error) {
	c := a.cfg.Cluster
	if len(req.Process) != c.J() || len(req.Route) != c.J() {
		return transport.AllocateAck{}, fmt.Errorf("allocation has wrong job dimension")
	}
	if len(req.Busy) != c.K(a.cfg.DataCenter) {
		return transport.AllocateAck{}, fmt.Errorf("allocation has wrong server dimension")
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	// Idempotent replay: the controller sends exactly one allocation per
	// slot, so a second Allocate with the executed slot is a retransmission
	// (lost response, duplicating network). Answer from the cache without
	// touching the ledgers or re-emitting telemetry — replaying the pops and
	// pushes would corrupt the queue trajectory.
	if req.Slot == a.lastSlot {
		return a.lastAck, nil
	}

	ack := transport.AllocateAck{
		Slot:      req.Slot,
		Processed: make([]float64, c.J()),
		DelaySum:  make([]float64, c.J()),
	}
	for j := 0; j < c.J(); j++ {
		if req.Process[j] < 0 || req.Route[j] < 0 {
			return transport.AllocateAck{}, fmt.Errorf("negative allocation for job type %d", j)
		}
		popped, delay := a.ledgers[j].Pop(req.Slot, req.Process[j])
		ack.Processed[j] = popped
		ack.DelaySum[j] = delay
		ack.Work += popped * c.JobTypes[j].Demand
		a.ledgers[j].Push(req.Slot, float64(req.Route[j]))
	}
	priceNow := a.cfg.Price.At(req.Slot)
	for k, b := range req.Busy {
		if b < 0 {
			return transport.AllocateAck{}, fmt.Errorf("negative busy count for server type %d", k)
		}
		ack.Energy += priceNow * b * c.DataCenters[a.cfg.DataCenter].Servers[k].Power
	}
	if a.cfg.Observer != nil {
		ev := telemetry.SlotEvent{
			Slot:       req.Slot,
			Origin:     telemetry.OriginAgent,
			DataCenter: a.cfg.DataCenter,
			Energy:     ack.Energy,
		}
		for j := range a.ledgers {
			ev.TotalBacklog += a.ledgers[j].Len()
			ev.Processed += ack.Processed[j]
		}
		a.cfg.Observer.ObserveSlot(ev)
	}
	a.lastSlot = req.Slot
	a.lastAck = ack
	return ack, nil
}

// restoreRPC replaces the local queue state from a controller snapshot and
// echoes the post-restore queue lengths so the controller can verify the
// agent landed exactly where intended. The allocation-replay cache is
// invalidated: after a restore the next Allocate must execute, whatever its
// slot.
func (a *Agent) restoreRPC(req transport.RestoreRequest) (transport.RestoreAck, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := queue.RestoreLedgers(a.ledgers, req.Snapshot); err != nil {
		return transport.RestoreAck{}, err
	}
	a.lastSlot = -1
	ack := transport.RestoreAck{Slot: req.Slot, QueueLens: make([]float64, len(a.ledgers))}
	for j := range a.ledgers {
		ack.QueueLens[j] = a.ledgers[j].Len()
	}
	return ack, nil
}

// QueueLens returns the current local backlog per job type (for tests and
// diagnostics).
func (a *Agent) QueueLens() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.ledgers))
	for j := range a.ledgers {
		out[j] = a.ledgers[j].Len()
	}
	return out
}

// Snapshot serializes the agent's local queue state (cohorts with arrival
// slots), so a restarted agent process can resume with exact backlogs and
// delay accounting via Restore.
func (a *Agent) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return queue.SnapshotLedgers(a.ledgers)
}

// Restore replaces the agent's local queue state from a Snapshot taken by an
// agent of the same cluster and site.
func (a *Agent) Restore(snapshot []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := queue.RestoreLedgers(a.ledgers, snapshot); err != nil {
		return err
	}
	a.lastSlot = -1
	return nil
}

// Serve starts a transport server for the agent on the listener. It returns
// the server; call Close on it to stop.
func (a *Agent) Serve(lis net.Listener) *transport.Server {
	srv := transport.NewServer(lis, a.Handle)
	go func() {
		// Serve exits on Close; an unexpected accept error leaves the
		// controller to notice via failed calls.
		_ = srv.Serve()
	}()
	return srv
}
