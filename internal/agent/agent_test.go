package agent

import (
	"math"
	"testing"

	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/transport"
)

func testAgent(t *testing.T) (*Agent, *model.Cluster) {
	t.Helper()
	c := model.NewReferenceCluster()
	avail, err := availability.NewReferenceAvailability(1, c, 48)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Cluster:      c,
		DataCenter:   1,
		Price:        price.Constant(0.5),
		Availability: avail,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, c
}

func TestNewValidation(t *testing.T) {
	c := model.NewReferenceCluster()
	avail, _ := availability.NewReferenceAvailability(1, c, 10)
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Cluster: c, DataCenter: 9, Price: price.Constant(1), Availability: avail}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := New(Config{Cluster: c, DataCenter: 0, Availability: avail}); err == nil {
		t.Error("nil price accepted")
	}
	bad := model.NewReferenceCluster()
	bad.JobTypes[0].Demand = 0
	if _, err := New(Config{Cluster: bad, DataCenter: 0, Price: price.Constant(1), Availability: avail}); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func call(t *testing.T, a *Agent, kind string, req, resp any) error {
	t.Helper()
	body, err := transport.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Handle(kind, body)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	data, err := transport.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return transport.Unmarshal(data, resp)
}

func TestHandlePing(t *testing.T) {
	a, _ := testAgent(t)
	var resp transport.Ping
	if err := call(t, a, transport.KindPing, transport.Ping{Nonce: 9}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Nonce != 9 {
		t.Errorf("Nonce = %d", resp.Nonce)
	}
}

func TestHandleUnknownKind(t *testing.T) {
	a, _ := testAgent(t)
	if _, err := a.Handle("wat", nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestStateReport(t *testing.T) {
	a, c := testAgent(t)
	var rep transport.StateReport
	if err := call(t, a, transport.KindState, transport.StateRequest{Slot: 5}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DataCenter != 1 || rep.Slot != 5 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Price != 0.5 {
		t.Errorf("price = %v", rep.Price)
	}
	if len(rep.Avail) != c.K(1) || len(rep.QueueLens) != c.J() {
		t.Errorf("report dimensions wrong")
	}
}

func TestAllocateLifecycle(t *testing.T) {
	a, c := testAgent(t)

	// Slot 0: route 4 jobs of type 0; nothing to process yet.
	alloc := transport.Allocate{
		Slot:    0,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	alloc.Route[0] = 4
	var ack transport.AllocateAck
	if err := call(t, a, transport.KindAllocate, alloc, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Processed[0] != 0 {
		t.Errorf("processed before anything queued: %v", ack.Processed[0])
	}
	if got := a.QueueLens()[0]; got != 4 {
		t.Errorf("queue = %v, want 4", got)
	}

	// Slot 1: process 3; delay must be one slot each; energy billed from
	// busy servers.
	alloc = transport.Allocate{
		Slot:    1,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	alloc.Process[0] = 3
	alloc.Busy[0] = 4 // speed 0.75 covers 3 work units
	if err := call(t, a, transport.KindAllocate, alloc, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Processed[0] != 3 || ack.DelaySum[0] != 3 {
		t.Errorf("processed %v delay %v, want 3 and 3", ack.Processed[0], ack.DelaySum[0])
	}
	// Energy: price 0.5 * 4 busy * power 0.60 = 1.2.
	if math.Abs(ack.Energy-1.2) > 1e-12 {
		t.Errorf("energy = %v, want 1.2", ack.Energy)
	}
	if math.Abs(ack.Work-3) > 1e-12 {
		t.Errorf("work = %v, want 3", ack.Work)
	}
	if got := a.QueueLens()[0]; got != 1 {
		t.Errorf("queue = %v, want 1", got)
	}
}

func TestAllocateSameSlotRouteNotProcessable(t *testing.T) {
	a, c := testAgent(t)
	alloc := transport.Allocate{
		Slot:    0,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	alloc.Route[0] = 2
	alloc.Process[0] = 2
	var ack transport.AllocateAck
	if err := call(t, a, transport.KindAllocate, alloc, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Processed[0] != 0 {
		t.Errorf("same-slot routed jobs processed: %v", ack.Processed[0])
	}
}

func TestAllocateRejectsMalformed(t *testing.T) {
	a, c := testAgent(t)
	bad := transport.Allocate{Route: []int{1}, Process: []float64{1}, Busy: []float64{1}}
	if err := call(t, a, transport.KindAllocate, bad, nil); err == nil {
		t.Error("wrong dimensions accepted")
	}
	alloc := transport.Allocate{
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	alloc.Process[0] = -1
	if err := call(t, a, transport.KindAllocate, alloc, nil); err == nil {
		t.Error("negative process accepted")
	}
	alloc.Process[0] = 0
	alloc.Busy[0] = -1
	if err := call(t, a, transport.KindAllocate, alloc, nil); err == nil {
		t.Error("negative busy accepted")
	}
}

func TestAgentSnapshotRestore(t *testing.T) {
	a, c := testAgent(t)
	alloc := transport.Allocate{
		Slot:    0,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	alloc.Route[0] = 5
	alloc.Route[3] = 2
	if err := call(t, a, transport.KindAllocate, alloc, nil); err != nil {
		t.Fatal(err)
	}

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := testAgent(t)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	want := a.QueueLens()
	got := fresh.QueueLens()
	for j := range want {
		if want[j] != got[j] {
			t.Errorf("queue[%d] = %v, want %v", j, got[j], want[j])
		}
	}

	// Delay accounting survives: process on the restored agent at slot 4
	// and expect 4-slot delays.
	proc := transport.Allocate{
		Slot:    4,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	proc.Process[0] = 5
	var ack transport.AllocateAck
	if err := call(t, fresh, transport.KindAllocate, proc, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.DelaySum[0] != 20 { // 5 jobs * 4 slots
		t.Errorf("delay sum = %v, want 20", ack.DelaySum[0])
	}

	if err := fresh.Restore([]byte("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}

// TestAllocateIdempotentReplay re-sends an executed slot's allocation — the
// retransmission shape a duplicating or retrying transport produces — and
// checks the ledgers move exactly once while the cached ack is replayed.
func TestAllocateIdempotentReplay(t *testing.T) {
	a, c := testAgent(t)

	route := make([]int, c.J())
	route[0] = 6
	alloc := transport.Allocate{
		Slot:    0,
		Route:   route,
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}
	var first transport.AllocateAck
	if err := call(t, a, transport.KindAllocate, alloc, &first); err != nil {
		t.Fatal(err)
	}
	lensAfterFirst := a.QueueLens()

	var replay transport.AllocateAck
	if err := call(t, a, transport.KindAllocate, alloc, &replay); err != nil {
		t.Fatalf("replayed allocation rejected: %v", err)
	}
	for j := range lensAfterFirst {
		if got := a.QueueLens()[j]; got != lensAfterFirst[j] {
			t.Errorf("queue[%d] = %v after replay, want %v (ledgers moved twice)", j, got, lensAfterFirst[j])
		}
	}
	if replay.Slot != first.Slot || replay.Work != first.Work {
		t.Errorf("replayed ack %+v differs from original %+v", replay, first)
	}

	// A new slot executes normally: process the queued jobs.
	proc := make([]float64, c.J())
	proc[0] = 6
	busy := make([]float64, c.K(1))
	busy[0] = 6 * c.JobTypes[0].Demand / c.DataCenters[1].Servers[0].Speed
	var second transport.AllocateAck
	if err := call(t, a, transport.KindAllocate, transport.Allocate{
		Slot: 1, Route: make([]int, c.J()), Process: proc, Busy: busy,
	}, &second); err != nil {
		t.Fatal(err)
	}
	if second.Processed[0] != 6 {
		t.Errorf("slot 1 processed %v, want 6 (replay cache leaked into a new slot)", second.Processed[0])
	}
}

// TestRestoreRPC pushes backlog into one agent, snapshots it, and restores a
// fresh agent over the wire protocol: the echoed lengths must match exactly
// and the replay cache must be invalidated.
func TestRestoreRPC(t *testing.T) {
	a, c := testAgent(t)
	route := make([]int, c.J())
	route[0], route[1] = 3, 5
	if err := call(t, a, transport.KindAllocate, transport.Allocate{
		Slot: 0, Route: route, Process: make([]float64, c.J()), Busy: make([]float64, c.K(1)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh, _ := testAgent(t)
	var ack transport.RestoreAck
	if err := call(t, fresh, transport.KindRestore, transport.RestoreRequest{Slot: 7, Snapshot: snap}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Slot != 7 {
		t.Errorf("ack slot = %d, want 7", ack.Slot)
	}
	want := a.QueueLens()
	for j := range want {
		if ack.QueueLens[j] != want[j] {
			t.Errorf("restored queue[%d] = %v, want %v", j, ack.QueueLens[j], want[j])
		}
		if got := fresh.QueueLens()[j]; got != want[j] {
			t.Errorf("agent queue[%d] = %v, want %v", j, got, want[j])
		}
	}
	if fresh.lastSlot != -1 {
		t.Error("restore left the allocation-replay cache live")
	}
	if err := call(t, fresh, transport.KindRestore, transport.RestoreRequest{Slot: 7, Snapshot: []byte("junk")}, nil); err == nil {
		t.Error("junk snapshot accepted")
	}
}
