package grefar_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"grefar/internal/controller"
	"grefar/internal/core"
	"grefar/internal/hollow"
)

// hollowBenchSizes is the fleet-size sweep recorded in BENCH_distributed.json.
var hollowBenchSizes = []int{100, 500, 1000, 2000}

// BenchmarkHollowSlot measures one real control-loop slot tick against a
// hollow fleet of N in-process agents behind the multiplexed gob-over-TCP
// wire: concurrent gather from N agents, the GreFar decision over N sites,
// and the allocate scatter with ack settlement. This is the number ROADMAP's
// control-plane scale work is judged by — BENCH_distributed.json tracks it
// per fleet size, and make bench-compare fails on >15% regressions.
func BenchmarkHollowSlot(b *testing.B) {
	for _, n := range hollowBenchSizes {
		b.Run(fmt.Sprintf("agents=%d", n), func(b *testing.B) {
			in, err := hollow.NewScaleInputs(2012, n, 4096)
			if err != nil {
				b.Fatal(err)
			}
			fleet, err := hollow.NewFleet(in, hollow.Options{})
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
			if err != nil {
				fleet.Close()
				b.Fatal(err)
			}
			ct, err := controller.New(in.Cluster, g, fleet.Conns(),
				controller.WithFailurePolicy(controller.Degrade))
			if err != nil {
				fleet.Close()
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i % 4096
				if _, _, _, err := ct.RunSlot(t, in.Workload.Arrivals(t)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fleet.Close()
		})
	}
}

// TestHollowBenchHarnessLeaksNoGoroutines is the hollow counterpart of the
// distributed harness leak test: one fleet start/run/close cycle must return
// the process to its prior goroutine count.
func TestHollowBenchHarnessLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	in, err := hollow.NewScaleInputs(2012, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := hollow.NewFleet(in, hollow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ct, err := controller.New(in.Cluster, g, fleet.Conns(),
		controller.WithFailurePolicy(controller.Degrade))
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	for tt := 0; tt < 3; tt++ {
		if _, _, _, err := ct.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
			fleet.Close()
			t.Fatal(err)
		}
	}
	fleet.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before harness, %d after close", before, got)
	}
}
