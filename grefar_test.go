package grefar_test

import (
	"testing"

	"grefar"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the quickstart
// example does.
func TestPublicAPIEndToEnd(t *testing.T) {
	inputs, err := grefar.ReferenceInputs(7, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := grefar.New(inputs.Cluster, grefar.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := grefar.Simulate(inputs, scheduler, grefar.SimOptions{Slots: 24 * 10, ValidateActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgEnergy <= 0 {
		t.Errorf("AvgEnergy = %v, want positive", res.AvgEnergy)
	}
	if res.TotalProcessed <= 0 {
		t.Error("nothing processed")
	}

	always, err := grefar.NewAlways(inputs.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grefar.Simulate(inputs, always, grefar.SimOptions{Slots: 24}); err != nil {
		t.Fatal(err)
	}

	planner, err := grefar.NewLookaheadPlanner(inputs.Cluster, 12)
	if err != nil {
		t.Fatal(err)
	}
	if planner.T() != 12 {
		t.Errorf("T = %d", planner.T())
	}
}

func TestReferenceClusterStandsAlone(t *testing.T) {
	c := grefar.ReferenceCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.M() != 4 {
		t.Errorf("unexpected shape N=%d M=%d", c.N(), c.M())
	}
}
