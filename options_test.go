package grefar_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"grefar"
)

// TestOptionsMatchLegacyConfig proves the functional-options constructor and
// the deprecated Config path build identical schedulers.
func TestOptionsMatchLegacyConfig(t *testing.T) {
	c := grefar.ReferenceCluster()
	legacy, err := grefar.New(c, grefar.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	optioned, err := grefar.New(c, grefar.WithV(7.5), grefar.WithBeta(100))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, optioned) {
		t.Errorf("schedulers differ:\nlegacy   %+v\noptioned %+v", legacy, optioned)
	}
	if legacy.Name() != optioned.Name() {
		t.Errorf("names differ: %q vs %q", legacy.Name(), optioned.Name())
	}
}

// TestOptionOrdering proves later options win, including over a Config
// literal used as the compat option.
func TestOptionOrdering(t *testing.T) {
	c := grefar.ReferenceCluster()
	s, err := grefar.New(c, grefar.Config{V: 1, Beta: 2}, grefar.WithV(7.5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := grefar.New(c, grefar.WithV(7.5), grefar.WithBeta(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != want.Name() {
		t.Errorf("ordering broken: got %q, want %q", s.Name(), want.Name())
	}
}

// TestSimulateOptionsByteIdentical proves the options path and the legacy
// SimOptions path produce byte-identical results on the reference seed.
func TestSimulateOptionsByteIdentical(t *testing.T) {
	const seed, slots = 2012, 60
	run := func(opts ...grefar.SimOption) *grefar.SimResult {
		t.Helper()
		in, err := grefar.ReferenceInputs(seed, slots)
		if err != nil {
			t.Fatal(err)
		}
		s, err := grefar.New(in.Cluster, grefar.WithV(7.5), grefar.WithBeta(100))
		if err != nil {
			t.Fatal(err)
		}
		res, err := grefar.Simulate(in, s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(grefar.SimOptions{Slots: slots, RecordSeries: true, ValidateActions: true})
	optioned := run(grefar.WithSlots(slots), grefar.WithRecordedSeries(true), grefar.WithActionValidation(true))
	if !reflect.DeepEqual(legacy, optioned) {
		t.Errorf("results differ:\nlegacy   %+v\noptioned %+v", legacy, optioned)
	}
}

// TestObserversDoNotChangeResults proves attaching telemetry leaves the
// simulation outcome byte-identical.
func TestObserversDoNotChangeResults(t *testing.T) {
	const seed, slots = 7, 40
	run := func(extra ...grefar.SimOption) *grefar.SimResult {
		t.Helper()
		in, err := grefar.ReferenceInputs(seed, slots)
		if err != nil {
			t.Fatal(err)
		}
		s, err := grefar.New(in.Cluster, grefar.WithV(7.5), grefar.WithBeta(100))
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]grefar.SimOption{grefar.WithSlots(slots)}, extra...)
		res, err := grefar.Simulate(in, s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	reg := grefar.NewRegistry()
	var jsonl strings.Builder
	observed := run(grefar.WithTelemetry(reg), grefar.WithObserver(grefar.NewJSONLObserver(&jsonl)))
	if !reflect.DeepEqual(plain, observed) {
		t.Error("telemetry changed the simulation result")
	}
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `grefar_slots_total{origin="sim"} 40`) {
		t.Errorf("registry missed slots:\n%s", expo.String())
	}
	// Per-site series carry the cluster's data-center names.
	if !strings.Contains(expo.String(), `grefar_dc_energy_cost_total{dc="dc1"}`) {
		t.Errorf("per-site series not labeled with DC names:\n%s", expo.String())
	}
	if jsonl.Len() == 0 || strings.Count(jsonl.String(), "\n") != 40 {
		t.Errorf("JSONL observer wrote %d lines, want 40", strings.Count(jsonl.String(), "\n"))
	}
}

// TestWithContextCancelsRun proves WithContext stops the run between slots.
func TestWithContextCancelsRun(t *testing.T) {
	in, err := grefar.ReferenceInputs(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	s, err := grefar.New(in.Cluster, grefar.WithV(7.5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = grefar.Simulate(in, s, grefar.WithSlots(50), grefar.WithContext(ctx))
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}
