package grefar_test

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"

	"grefar"
	"grefar/internal/queue"
)

// loadAllocBudgets parses testdata/bench_slot_baseline.txt: one
// "case ceiling" pair per line, '#' comments and blank lines ignored.
func loadAllocBudgets(t *testing.T) map[string]float64 {
	t.Helper()
	f, err := os.Open("testdata/bench_slot_baseline.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	budgets := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("baseline line %q: want \"case ceiling\"", line)
		}
		ceil, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("baseline line %q: %v", line, err)
		}
		budgets[fields[0]] = ceil
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return budgets
}

// TestDecideAllocationBudget is the hot-path allocation regression guard
// behind `make bench-slot`: a slot decision on the reference cluster must
// stay within the allocs/op ceilings recorded in
// testdata/bench_slot_baseline.txt. The decideScratch workspace brought the
// counts down from the pre-workspace seed (78 at beta=0, 160 at beta=100);
// this test keeps them down.
func TestDecideAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector bookkeeping under -race")
	}
	budgets := loadAllocBudgets(t)
	cases := []struct {
		name string
		beta float64
		opts []grefar.Option
	}{
		{name: "beta=0", beta: 0},
		{name: "beta=100", beta: 100},
		{name: "beta=100-warm", beta: 100, opts: []grefar.Option{
			grefar.WithWarmStart(true), grefar.WithAwaySteps(true),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ceil, ok := budgets[tc.name]
			if !ok {
				t.Fatalf("no budget recorded for %s in testdata/bench_slot_baseline.txt", tc.name)
			}
			inputs, err := grefar.ReferenceInputs(2012, 48)
			if err != nil {
				t.Fatal(err)
			}
			c := inputs.Cluster
			g, err := grefar.New(c, append([]grefar.Option{grefar.Config{V: 7.5, Beta: tc.beta}}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			st := buildState(inputs, 12)
			lengths := queue.Lengths{
				Central: make([]float64, c.J()),
				Local:   make([][]float64, c.N()),
			}
			for j := range lengths.Central {
				lengths.Central[j] = float64(3 + j)
			}
			for i := range lengths.Local {
				lengths.Local[i] = make([]float64, c.J())
				for j := range lengths.Local[i] {
					lengths.Local[i][j] = float64((i*7 + j*3) % 20)
				}
			}
			slot := 0
			got := testing.AllocsPerRun(200, func() {
				if _, err := g.Decide(slot, st, lengths); err != nil {
					t.Fatal(err)
				}
				slot++
			})
			if got > ceil {
				t.Errorf("Decide allocates %.1f allocs/op, budget is %.0f (see testdata/bench_slot_baseline.txt)", got, ceil)
			}
		})
	}
}
