module grefar

go 1.22
