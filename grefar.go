// Package grefar is a Go implementation of GreFar, the provably-efficient
// online algorithm for scheduling batch jobs across geographically
// distributed data centers from "Provably-Efficient Job Scheduling for
// Energy and Fairness in Geographically Distributed Data Centers"
// (Ren, He, Xu — ICDCS 2012).
//
// GreFar minimizes an energy-fairness cost subject to queueing-delay
// guarantees using Lyapunov drift-plus-penalty optimization: each slot it
// observes only the current electricity prices, server availability, and
// queue backlogs, and solves a small convex program. Theorem 1 of the paper
// guarantees the time-average cost is within O(1/V) of the optimal T-step
// lookahead policy while all queues stay O(V).
//
// This package is the public facade over the implementation packages: the
// domain model, the scheduler and its baselines, the time-slot simulator,
// the stochastic input generators, the distributed controller/agent
// deployment, and the telemetry layer. A minimal session:
//
//	inputs, _ := grefar.ReferenceInputs(2012, 2000)
//	scheduler, _ := grefar.New(inputs.Cluster, grefar.WithV(7.5), grefar.WithBeta(100))
//	result, _ := grefar.Simulate(inputs, scheduler, grefar.WithSlots(2000))
//	fmt.Println(result.AvgEnergy, result.AvgFairness, result.AvgLocalDelay)
//
// Construction uses functional options (WithV, WithBeta, WithTelemetry,
// WithSlots, ...). The former struct-based style still works — Config and
// SimOptions satisfy the Option and SimOption interfaces themselves — so
// grefar.New(cluster, grefar.Config{V: 7.5}) remains valid, deprecated in
// favor of the options.
//
// For observability, pass WithTelemetry(reg) to New or Simulate and expose
// reg over HTTP (it is an http.Handler), or stream per-slot records with
// NewJSONLObserver:
//
//	reg := grefar.NewRegistry()
//	scheduler, _ := grefar.New(inputs.Cluster, grefar.WithV(7.5), grefar.WithTelemetry(reg))
//	result, _ := grefar.Simulate(inputs, scheduler, grefar.WithSlots(2000), grefar.WithTelemetry(reg))
//	http.Handle("/metrics", reg)
package grefar

import (
	"grefar/internal/core"
	"grefar/internal/fairness"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/solve"
	"grefar/internal/tariff"
	"grefar/internal/telemetry"
	"grefar/internal/workload"
)

// Domain model types (see internal/model for full documentation).
type (
	// Cluster is the static system description: data centers, job types,
	// and accounts.
	Cluster = model.Cluster
	// DataCenter is one geographically distinct site.
	DataCenter = model.DataCenter
	// ServerType describes one server class: speed s_k and active power p_k.
	ServerType = model.ServerType
	// JobType is the paper's y_j = {d_j, D_j, rho_j}.
	JobType = model.JobType
	// Account is an organization sharing the cluster, with target share
	// gamma_m.
	Account = model.Account
	// State is x(t): per-site availability and electricity price.
	State = model.State
	// Action is z(t): routing, processing, and busy-server decisions.
	Action = model.Action
)

// Scheduling types.
type (
	// Scheduler is the policy abstraction: GreFar and the baselines all
	// implement it.
	Scheduler = sched.Scheduler
	// Config carries GreFar's control knobs V (cost-delay) and Beta
	// (energy-fairness).
	Config = core.Config
	// FWOptions tunes the Frank-Wolfe solver used when beta > 0 (see
	// WithFrankWolfe, WithAwaySteps, WithWarmStart).
	FWOptions = solve.FWOptions
	// QueueLengths is the backlog snapshot Theta(t) a Scheduler observes.
	QueueLengths = queue.Lengths
	// SolverKind selects the slot-solver implementation (see WithSolver).
	SolverKind = core.SolverKind
)

// Slot-solver kinds (Config.Solver / WithSolver).
const (
	// SolverAuto picks the historical monolithic dense solver (the default).
	SolverAuto = core.SolverAuto
	// SolverMonolithic pins the monolithic dense solver explicitly.
	SolverMonolithic = core.SolverMonolithic
	// SolverSparse runs the slot solve on the active-pair compact
	// representation: identical algorithms, bit-identical decisions.
	SolverSparse = core.SolverSparse
	// SolverDecomposed block-decomposes the beta > 0 slot solve per data
	// center (see WithDecomposedSolver, WithSolverWorkers).
	SolverDecomposed = core.SolverDecomposed
)

// Simulation types.
type (
	// SimInputs bundles the cluster with its stochastic drivers.
	SimInputs = sim.Inputs
	// SimOptions tunes a simulation run.
	SimOptions = sim.Options
	// SimResult carries the metrics of a run.
	SimResult = sim.Result
)

// New builds a GreFar scheduler for the cluster (Algorithm 1 of the paper),
// configured by functional options:
//
//	grefar.New(cluster, grefar.WithV(7.5), grefar.WithBeta(100), grefar.WithTelemetry(reg))
//
// Options apply in order. A legacy Config literal is itself an option that
// replaces the whole configuration, so the former call style
// grefar.New(cluster, grefar.Config{V: 7.5, Beta: 100}) builds an identical
// scheduler.
func New(c *Cluster, opts ...Option) (*core.GreFar, error) {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o.ApplyScheduler(&cfg)
		}
	}
	if c != nil {
		if n, ok := cfg.Observer.(telemetry.DCNamer); ok {
			n.SetDCNames(dataCenterNames(c))
		}
	}
	return core.New(c, cfg)
}

// NewAlways builds the myopic baseline that schedules jobs immediately
// whenever resources are available (paper section VI-B3).
func NewAlways(c *Cluster) (*sched.Always, error) {
	return sched.NewAlways(c)
}

// NewLookaheadPlanner builds the optimal T-step lookahead benchmark of
// Theorem 1 (computed offline by linear programming).
func NewLookaheadPlanner(c *Cluster, t int) (*sched.LookaheadPlanner, error) {
	return sched.NewLookaheadPlanner(c, t)
}

// Simulate drives a scheduler over the horizon and aggregates the paper's
// metrics (running-average energy cost, fairness score, per-site delays),
// configured by functional options:
//
//	grefar.Simulate(in, s, grefar.WithSlots(2000), grefar.WithAdmission(p))
//
// Options apply in order. A legacy SimOptions literal is itself an option
// that replaces the whole option set, so the former call style
// grefar.Simulate(in, s, grefar.SimOptions{Slots: 2000}) runs identically.
func Simulate(in SimInputs, s Scheduler, opts ...SimOption) (*SimResult, error) {
	var opt SimOptions
	for _, o := range opts {
		if o != nil {
			o.ApplySim(&opt)
		}
	}
	if in.Cluster != nil {
		if n, ok := opt.Observer.(telemetry.DCNamer); ok {
			n.SetDCNames(dataCenterNames(in.Cluster))
		}
	}
	return sim.Run(in, s, opt)
}

// ReferenceInputs assembles the paper's evaluation setup: the Table I
// three-data-center cluster, electricity prices calibrated to the Table I
// averages, the four-organization Cosmos-like workload, and
// slackness-respecting availability, all deterministic in the seed.
func ReferenceInputs(seed int64, slots int) (SimInputs, error) {
	return sim.NewReferenceInputs(seed, slots)
}

// ReferenceCluster returns the Table I system description alone, for callers
// that supply their own price, workload, and availability processes.
func ReferenceCluster() *Cluster {
	return model.NewReferenceCluster()
}

// Extension types (paper sections III-A2, III-B footnotes and section V).
type (
	// Tariff maps a site's energy draw to billed cost; convex tariffs are
	// the paper's section III-A2 generalization.
	Tariff = tariff.Tariff
	// FairnessFunction scores allocations (paper eq. 3 or alternatives).
	FairnessFunction = fairness.Function
	// AdmissionPolicy filters arrivals under overload (paper section V).
	AdmissionPolicy = sim.AdmissionPolicy
)

// NewLocalGreedy builds the related-work baseline that optimizes each slot
// locally: price-aware across sites, blind across time (paper section II).
func NewLocalGreedy(c *Cluster) (*sched.LocalGreedy, error) {
	return sched.NewLocalGreedy(c)
}

// NewQuadraticTariff builds a convex demand-charge tariff whose marginal
// price doubles when a site's slot draw reaches scale.
func NewQuadraticTariff(scale float64) (Tariff, error) {
	return tariff.NewQuadratic(scale)
}

// NewTieredTariff builds a block-rate (piecewise-linear convex) tariff.
func NewTieredTariff(limits, multipliers []float64) (Tariff, error) {
	return tariff.NewTiered(limits, multipliers)
}

// NewQuadraticFairness builds the paper's fairness function (eq. 3) for the
// given target shares. It doubles as a core.FairnessTerm for Config.Fairness.
func NewQuadraticFairness(weights []float64) (*fairness.Quadratic, error) {
	return fairness.NewQuadratic(weights)
}

// NewAlphaFairness builds the alpha-fair alternative the paper's footnote 5
// permits. It doubles as a core.FairnessTerm for Config.Fairness.
func NewAlphaFairness(alpha float64, weights []float64) (*fairness.AlphaFair, error) {
	return fairness.NewAlphaFair(alpha, weights)
}

// NewThresholdAdmission builds the tail-drop admission policy for
// SimOptions.Admission, keeping queues bounded under overload.
func NewThresholdAdmission(limit []float64) (*sim.ThresholdAdmission, error) {
	return sim.NewThresholdAdmission(limit)
}

// RawJob is one record of a raw job log before type grouping.
type RawJob = workload.RawJob

// GroupJobs quantizes a raw job log into job types and an arrival trace —
// the paper's "group jobs having approximately the same characteristics into
// the same type" preprocessing step.
func GroupJobs(jobs []RawJob, numAccounts int, opts workload.GroupOptions) ([]JobType, *workload.Trace, error) {
	return workload.GroupJobs(jobs, numAccounts, opts)
}
