package grefar

import (
	"context"
	"io"

	"grefar/internal/core"
	"grefar/internal/solve"
	"grefar/internal/telemetry"
)

// Option configures a GreFar scheduler built by New. Options apply in order;
// later options win. The legacy Config struct itself satisfies Option (it
// replaces the whole configuration), so the pre-options call style
// grefar.New(cluster, grefar.Config{V: 7.5}) keeps working unchanged.
type Option interface {
	ApplyScheduler(*Config)
}

// SimOption configures a simulation run driven by Simulate. Options apply in
// order; later options win. The legacy SimOptions struct itself satisfies
// SimOption, so grefar.Simulate(in, s, grefar.SimOptions{Slots: 2000}) keeps
// working unchanged.
type SimOption interface {
	ApplySim(*SimOptions)
}

// SessionOption configures a Session built by Open (or Restore). Scheduler
// knobs, run options, and observers all configure sessions too — their
// constructors return combined interfaces — so the same WithV/WithCheck/
// WithTelemetry calls work across Simulate and Open. Inputs arrive via
// WithInputs.
type SessionOption interface {
	applySession(*sessionConfig)
}

// sessionConfig accumulates session options: the scheduler side, the
// per-slot engine side, and the inputs.
type sessionConfig struct {
	inputs     SimInputs
	haveInputs bool
	sched      Config
	sim        SimOptions
}

// SchedulerOption configures a scheduler — accepted by New and by Open.
type SchedulerOption interface {
	Option
	SessionOption
}

// RunOption configures the per-slot control loop — accepted by Simulate and
// by Open.
type RunOption interface {
	SimOption
	SessionOption
}

// SchedulerSimOption is accepted everywhere — New, Simulate, and Open —
// because observer wiring is meaningful on either side of the control loop.
type SchedulerSimOption interface {
	Option
	SimOption
	SessionOption
}

type optionFunc func(*Config)

func (f optionFunc) ApplyScheduler(cfg *Config) { f(cfg) }

func (f optionFunc) applySession(sc *sessionConfig) { f(&sc.sched) }

type simOptionFunc func(*SimOptions)

func (f simOptionFunc) ApplySim(o *SimOptions) { f(o) }

func (f simOptionFunc) applySession(sc *sessionConfig) { f(&sc.sim) }

// WithV sets the cost-delay parameter V >= 0: larger V weighs the
// energy-fairness cost more heavily against queue drift, reducing cost at the
// expense of O(V) queue backlog (Theorem 1).
func WithV(v float64) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.V = v })
}

// WithBeta sets the energy-fairness parameter beta >= 0: 0 ignores fairness
// entirely; large values prioritize fairness over energy cost.
func WithBeta(beta float64) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.Beta = beta })
}

// WithFairness selects the fairness penalty entering the slot objective
// (paper footnote 5). NewQuadraticFairness and NewAlphaFairness both build
// suitable terms. Nil restores the default quadratic penalty.
func WithFairness(term core.FairnessTerm) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.Fairness = term })
}

// WithTariff selects the energy tariff the scheduler optimizes against
// (paper section III-A2). Nil restores the baseline linear pricing.
func WithTariff(trf Tariff) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.Tariff = trf })
}

// WithRouting selects the routing tie-break rule (core.SplitTies or
// core.FirstSiteWins).
func WithRouting(rule core.RoutingRule) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.Routing = rule })
}

// WithFrankWolfe tunes the Frank-Wolfe solver used when beta > 0. Invalid
// values (negative MaxIters, NaN or negative Tol) are rejected at New with
// ErrBadConfig.
func WithFrankWolfe(opts solve.FWOptions) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.FW = opts })
}

// WithAwaySteps toggles the away-step Frank-Wolfe variant for the beta > 0
// slot solve: it carries the active vertex set of the iterate and can remove
// mass from a bad vertex instead of only adding new ones, converging linearly
// where the vanilla method zigzags at O(1/k). Composes with WithFrankWolfe
// (apply WithFrankWolfe first; it replaces all solver options at once).
func WithAwaySteps(on bool) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.FW.AwaySteps = on })
}

// WithWarmStart toggles cross-slot warm-starting of the beta > 0 slot solve:
// each slot starts from the previous slot's iterate, repaired against the
// current availability caps, falling back to the zero start when the repair
// fails (first slot, availability collapse). Off by default — results agree
// within the solver tolerance but are not bit-identical to cold starts.
func WithWarmStart(on bool) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.WarmStart = on })
}

// WithSolver selects the slot-solver implementation: SolverAuto (the
// default monolithic dense path), SolverMonolithic (the same, pinned
// explicitly), SolverSparse (the active-pair compact representation,
// bit-identical decisions in O(active) work), or SolverDecomposed (per-data-
// center block decomposition, see WithDecomposedSolver). The sparse kinds
// require a cluster without auxiliary resources and a linear (or absent)
// tariff; New rejects other combinations with ErrBadConfig.
func WithSolver(kind core.SolverKind) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.Solver = kind })
}

// WithDecomposedSolver selects the block-decomposed slot solver: the beta > 0
// slot decision splits into per-data-center subproblems coordinated by dual
// prices on the fairness coupling, solved concurrently when worker pooling is
// enabled (WithSolverWorkers) and finished by a monolithic polish, so the
// decisions agree with the default solver to solver tolerance at a fraction
// of the large-instance cost.
func WithDecomposedSolver() SchedulerOption {
	return WithSolver(core.SolverDecomposed)
}

// WithSolverWorkers bounds the concurrency of the decomposed solver's block
// stage: n <= 1 solves the per-site blocks serially, larger values pool them
// across n goroutines. Results are byte-identical at any worker count.
func WithSolverWorkers(n int) SchedulerOption {
	return optionFunc(func(cfg *Config) { cfg.SolverWorkers = n })
}

// WithSlots sets the simulation horizon t_end (required, > 0).
func WithSlots(n int) SimOption {
	return simOptionFunc(func(o *SimOptions) { o.Slots = n })
}

// WithAdmission installs an admission policy filtering arrivals before they
// enter the central queues (paper section V). Nil admits everything.
func WithAdmission(p AdmissionPolicy) RunOption {
	return simOptionFunc(func(o *SimOptions) { o.Admission = p })
}

// WithRecordedSeries toggles keeping per-slot prefix-average series for
// plotting; off, only scalar summaries are produced.
func WithRecordedSeries(on bool) RunOption {
	return simOptionFunc(func(o *SimOptions) { o.RecordSeries = on })
}

// WithActionValidation toggles re-checking every action against the model
// constraints, failing the run on violation.
func WithActionValidation(on bool) RunOption {
	return simOptionFunc(func(o *SimOptions) { o.ValidateActions = on })
}

// WithCheck toggles the invariant checker: every applied slot is re-verified
// against the paper's queue dynamics (12)-(13), action feasibility, and job
// conservation, and the run fails on the first violation. Recommended in
// tests; off by default because it roughly doubles per-slot bookkeeping.
func WithCheck(on bool) RunOption {
	return simOptionFunc(func(o *SimOptions) { o.Check = on })
}

// WithContext makes the simulation cancelable: Simulate returns an error
// wrapping ctx.Err() as soon as cancellation is observed between slots.
//
// Deprecated: the public surface is context-first — pass the context as the
// first argument instead (SimulateContext, Sweep, Session.Tick). WithContext
// is kept as a shim for existing Simulate callers and behaves identically.
func WithContext(ctx context.Context) SimOption {
	return simOptionFunc(func(o *SimOptions) { o.Context = ctx })
}

// WithInputs supplies the session's system description and environment (the
// same Inputs bundle Simulate takes). Required by Open. A session normally
// runs without Inputs.Workload — arrivals come from Session.Submit — but a
// generator may be kept for synthetic background load, and its arrivals add
// to the submitted stream.
func WithInputs(in SimInputs) SessionOption {
	return sessionOptionFunc(func(sc *sessionConfig) {
		sc.inputs = in
		sc.haveInputs = true
	})
}

type sessionOptionFunc func(*sessionConfig)

func (f sessionOptionFunc) applySession(sc *sessionConfig) { f(sc) }

// observerOption attaches a SlotObserver on either side of the control loop,
// composing with (never replacing) observers installed by earlier options.
type observerOption struct {
	obs telemetry.SlotObserver
}

func (oo observerOption) ApplyScheduler(cfg *Config) {
	cfg.Observer = telemetry.Multi(cfg.Observer, oo.obs)
}

func (oo observerOption) ApplySim(o *SimOptions) {
	o.Observer = telemetry.Multi(o.Observer, oo.obs)
}

func (oo observerOption) applySession(sc *sessionConfig) {
	oo.ApplyScheduler(&sc.sched)
	oo.ApplySim(&sc.sim)
}

// WithObserver attaches a slot observer. Passed to New it receives one
// origin-"decide" event per scheduling decision; passed to Simulate it
// receives one origin-"sim" event per applied slot. Observers compose:
// several WithObserver/WithTelemetry options all receive events.
func WithObserver(obs SlotObserver) SchedulerSimOption {
	return observerOption{obs: obs}
}

// WithTelemetry bridges slot events into reg's grefar_* Prometheus metric
// families (see telemetry.RegistryObserver for the family list). New and
// Simulate label per-site series with the cluster's data-center names.
func WithTelemetry(reg *Registry) SchedulerSimOption {
	return observerOption{obs: telemetry.NewRegistryObserver(reg)}
}

// dataCenterNames lists the cluster's site names for per-site metric labels.
func dataCenterNames(c *Cluster) []string {
	names := make([]string, len(c.DataCenters))
	for i, dc := range c.DataCenters {
		names[i] = dc.Name
	}
	return names
}

// Telemetry types (see internal/telemetry for full documentation).
type (
	// Registry is a stdlib-only metrics registry with Prometheus text
	// exposition; it is an http.Handler serving /metrics.
	Registry = telemetry.Registry
	// SlotEvent is the structured record one control-loop iteration emits.
	SlotEvent = telemetry.SlotEvent
	// SlotObserver receives one SlotEvent per control-loop iteration.
	SlotObserver = telemetry.SlotObserver
	// SolveStats describes how a slot's optimization was solved.
	SolveStats = telemetry.SolveStats
)

// NewRegistry builds an empty telemetry registry for WithTelemetry.
func NewRegistry() *Registry {
	return telemetry.NewRegistry()
}

// NewJSONLObserver builds an observer writing one JSON object per SlotEvent
// to w — the offline-analysis twin of the Prometheus exposition. Check its
// Err method after the run.
func NewJSONLObserver(w io.Writer) *telemetry.JSONLObserver {
	return telemetry.NewJSONLObserver(w)
}

// MultiObserver bundles observers into one, dropping nils; it returns nil
// when nothing remains so callers keep the fast nil-observer path.
func MultiObserver(obs ...SlotObserver) SlotObserver {
	return telemetry.Multi(obs...)
}
