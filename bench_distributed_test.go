package grefar_test

import (
	"net"
	"runtime"
	"testing"
	"time"

	"grefar"
	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/transport"
)

// startDistributed builds the 3-site reference system over real loopback TCP
// — one listener, server, and client per agent — and returns the controller
// with a teardown that closes every connection, server, and listener. Both
// the benchmark and its companion leak test run through this helper so the
// lifecycle they exercise is identical.
func startDistributed(tb testing.TB) (*controller.Controller, grefar.SimInputs, func()) {
	tb.Helper()
	inputs, err := grefar.ReferenceInputs(2012, 4096)
	if err != nil {
		tb.Fatal(err)
	}
	c := inputs.Cluster
	conns := make([]controller.AgentConn, c.N())
	var cleanups []func()
	teardown := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        inputs.Prices[i],
			Availability: inputs.Availability,
		})
		if err != nil {
			teardown()
			tb.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			tb.Fatal(err)
		}
		srv := a.Serve(lis)
		cleanups = append(cleanups, func() { srv.Close() })
		cli, err := transport.Dial(srv.Addr(), 5*time.Second)
		if err != nil {
			teardown()
			tb.Fatal(err)
		}
		cleanups = append(cleanups, func() { cli.Close() })
		conns[i] = cli
	}
	g, err := grefar.New(c, grefar.Config{V: 7.5, Beta: 100})
	if err != nil {
		teardown()
		tb.Fatal(err)
	}
	ct, err := controller.New(c, g, conns)
	if err != nil {
		teardown()
		tb.Fatal(err)
	}
	return ct, inputs, teardown
}

// BenchmarkDistributedSlot measures one full control-loop round over real
// loopback TCP: state gathering from three agents, the GreFar decision, and
// allocation dispatch — the number that bounds how fast slots can tick in a
// live deployment. Teardown runs outside the timer so repeated invocations
// (go test -count=N) never accumulate listeners or goroutines.
func BenchmarkDistributedSlot(b *testing.B) {
	ct, inputs, teardown := startDistributed(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, _, err := ct.RunSlot(n%4096, inputs.Workload.Arrivals(n%4096)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	teardown()
}

// TestDistributedBenchHarnessLeaksNoGoroutines pins the benchmark harness's
// hygiene: a full start/run/teardown cycle must return the process to its
// prior goroutine count, so a -count=N benchmark run cannot accumulate
// listeners, server loops, or client readers across iterations.
func TestDistributedBenchHarnessLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ct, inputs, teardown := startDistributed(t)
	for n := 0; n < 3; n++ {
		if _, _, _, err := ct.RunSlot(n, inputs.Workload.Arrivals(n)); err != nil {
			teardown()
			t.Fatal(err)
		}
	}
	teardown()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before harness, %d after teardown", before, got)
	}
}
