package grefar_test

import (
	"net"
	"testing"
	"time"

	"grefar"
	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/transport"
)

// BenchmarkDistributedSlot measures one full control-loop round over real
// loopback TCP: state gathering from three agents, the GreFar decision, and
// allocation dispatch — the number that bounds how fast slots can tick in a
// live deployment.
func BenchmarkDistributedSlot(b *testing.B) {
	inputs, err := grefar.ReferenceInputs(2012, 4096)
	if err != nil {
		b.Fatal(err)
	}
	c := inputs.Cluster
	conns := make([]controller.AgentConn, c.N())
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        inputs.Prices[i],
			Availability: inputs.Availability,
		})
		if err != nil {
			b.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := a.Serve(lis)
		defer srv.Close()
		cli, err := transport.Dial(srv.Addr(), 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		conns[i] = cli
	}
	g, err := grefar.New(c, grefar.Config{V: 7.5, Beta: 100})
	if err != nil {
		b.Fatal(err)
	}
	ct, err := controller.New(c, g, conns)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, _, err := ct.RunSlot(n%4096, inputs.Workload.Arrivals(n%4096)); err != nil {
			b.Fatal(err)
		}
	}
}
