package grefar_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"grefar"
)

// buildSpecs makes one RunSpec per V value, each with its own inputs and its
// own scheduler — the ownership rule Sweep documents.
func buildSpecs(t *testing.T, slots int, vs []float64) []grefar.RunSpec {
	t.Helper()
	specs := make([]grefar.RunSpec, len(vs))
	for i, v := range vs {
		inputs, err := grefar.ReferenceInputs(2012, slots)
		if err != nil {
			t.Fatal(err)
		}
		s, err := grefar.New(inputs.Cluster, grefar.WithV(v), grefar.WithBeta(100))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = grefar.RunSpec{
			Inputs:    inputs,
			Scheduler: s,
			Options:   []grefar.SimOption{grefar.SimOptions{Slots: slots, ValidateActions: true}},
		}
	}
	return specs
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	const slots = 72
	vs := []float64{1, 7.5, 30, 90}

	serial, err := grefar.Sweep(context.Background(), buildSpecs(t, slots, vs), grefar.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := grefar.Sweep(context.Background(), buildSpecs(t, slots, vs), grefar.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(vs) || len(parallel) != len(vs) {
		t.Fatalf("got %d/%d results, want %d", len(serial), len(parallel), len(vs))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("spec %d: parallel result differs from serial", i)
		}
	}
	// Results are ordered by spec index: higher V trades delay for energy,
	// so final energy must be non-increasing along the sweep.
	for i := 1; i < len(serial); i++ {
		if serial[i].AvgEnergy > serial[i-1].AvgEnergy {
			t.Errorf("V=%v energy %v > V=%v energy %v; results out of spec order?",
				vs[i], serial[i].AvgEnergy, vs[i-1], serial[i-1].AvgEnergy)
		}
	}
}

func TestSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := grefar.Sweep(ctx, buildSpecs(t, 48, []float64{1, 7.5}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
