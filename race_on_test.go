//go:build race

package grefar_test

// raceEnabled reports whether the race detector is compiled in. Allocation
// guards skip under -race: the detector's shadow bookkeeping changes
// allocation counts, so the budgets in testdata/bench_slot_baseline.txt only
// hold for plain builds.
const raceEnabled = true
