package grefar

import (
	"context"
	"fmt"
	"io"

	"grefar/internal/serve"
	"grefar/internal/telemetry"
)

// Serving-mode types (see internal/serve for full documentation).
type (
	// Session is a long-lived GreFar control loop: jobs arrive via Submit,
	// slots execute via Tick(ctx), the scheduler hot-reloads via
	// Reconfigure, and the durable state round-trips through
	// Checkpoint/Restore. Open builds one.
	Session = serve.Session
	// Job is one unit of a session's arrival stream: count jobs of one of
	// the cluster's job types (the account is implied by the type).
	Job = serve.Job
	// TickReport summarizes one served slot.
	TickReport = serve.TickReport
)

// Open starts a session at slot 0, configured by the same functional options
// New and Simulate take, plus WithInputs for the environment:
//
//	in, _ := grefar.ReferenceInputs(2012, 4096)
//	in.Workload = nil // arrivals come from Submit
//	s, _ := grefar.Open(grefar.WithInputs(in), grefar.WithV(7.5), grefar.WithBeta(100), grefar.WithCheck(true))
//	s.Submit([]grefar.Job{{Type: 0, Count: 3}})
//	s.Tick(ctx)
//
// The control loop is the exact loop Simulate runs — the batch path and the
// serving path share one engine — so a session driven by a workload
// generator reproduces Simulate's trajectory slot for slot.
func Open(opts ...SessionOption) (*Session, error) {
	var sc sessionConfig
	for _, o := range opts {
		if o != nil {
			o.applySession(&sc)
		}
	}
	if !sc.haveInputs {
		return nil, fmt.Errorf("%w: a session needs inputs (pass WithInputs)", ErrBadInputs)
	}
	if sc.inputs.Cluster != nil {
		names := dataCenterNames(sc.inputs.Cluster)
		if n, ok := sc.sched.Observer.(telemetry.DCNamer); ok {
			n.SetDCNames(names)
		}
		if n, ok := sc.sim.Observer.(telemetry.DCNamer); ok {
			n.SetDCNames(names)
		}
	}
	return serve.NewSession(serve.SessionConfig{
		Inputs:    sc.inputs,
		Scheduler: sc.sched,
		Sim:       sc.sim,
	})
}

// Restore opens a session with the given options and rewinds it onto a
// checkpoint previously written by Session.Checkpoint. The options must
// rebuild the same system (cluster, scheduler configuration) the checkpoint
// was taken under for the continuation to be byte-identical to the
// uninterrupted run. Corrupt checkpoints fail with ErrCorruptSnapshot;
// checkpoints from a different cluster shape with ErrSnapshotMismatch.
func Restore(r io.Reader, opts ...SessionOption) (*Session, error) {
	s, err := Open(opts...)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(r); err != nil {
		return nil, err
	}
	return s, nil
}

// SimulateContext is Simulate with the context first, per the public
// surface's context-first convention: the run is canceled between slots as
// soon as ctx is done. The context parameter wins over any WithContext
// option in opts.
func SimulateContext(ctx context.Context, in SimInputs, s Scheduler, opts ...SimOption) (*SimResult, error) {
	opts = append(append(make([]SimOption, 0, len(opts)+1), opts...), WithContext(ctx))
	return Simulate(in, s, opts...)
}
