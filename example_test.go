package grefar_test

import (
	"fmt"

	"grefar"
)

// ExampleSimulate runs GreFar on the paper's reference system for one
// simulated day and reports whether any work was processed. Deterministic
// seeds make the output stable.
func ExampleSimulate() {
	inputs, err := grefar.ReferenceInputs(2012, 24)
	if err != nil {
		panic(err)
	}
	scheduler, err := grefar.New(inputs.Cluster, grefar.Config{V: 7.5, Beta: 100})
	if err != nil {
		panic(err)
	}
	res, err := grefar.Simulate(inputs, scheduler, grefar.SimOptions{Slots: 24})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.SchedulerName, res.TotalProcessed > 0)
	// Output: grefar(V=7.5,beta=100) true
}

// ExampleNew shows the two control knobs of Algorithm 1: the cost-delay
// parameter V and the energy-fairness parameter beta.
func ExampleNew() {
	cluster := grefar.ReferenceCluster()
	aggressive, _ := grefar.New(cluster, grefar.Config{V: 20})       // chase cheap power
	fair, _ := grefar.New(cluster, grefar.Config{V: 7.5, Beta: 100}) // balance fairness
	fmt.Println(aggressive.Name())
	fmt.Println(fair.Name())
	// Output:
	// grefar(V=20,beta=0)
	// grefar(V=7.5,beta=100)
}

// ExampleNewAlways contrasts the myopic baseline with GreFar on the same
// trace: Always pays more for energy.
func ExampleNewAlways() {
	inputs, _ := grefar.ReferenceInputs(2012, 24*30)
	always, _ := grefar.NewAlways(inputs.Cluster)
	gre, _ := grefar.New(inputs.Cluster, grefar.Config{V: 7.5})
	ra, _ := grefar.Simulate(inputs, always, grefar.SimOptions{Slots: 24 * 30})
	rg, _ := grefar.Simulate(inputs, gre, grefar.SimOptions{Slots: 24 * 30})
	fmt.Println("grefar cheaper:", rg.AvgEnergy < ra.AvgEnergy)
	// Output: grefar cheaper: true
}

// ExampleNewQuadraticTariff prices a site's energy draw under a convex
// demand-charge tariff (the paper's section III-A2 extension).
func ExampleNewQuadraticTariff() {
	trf, _ := grefar.NewQuadraticTariff(100)
	fmt.Printf("%.1f %.1f\n", trf.Cost(0.5, 100), trf.Marginal(0.5, 100))
	// Output: 75.0 1.0
}
