package grefar_test

import (
	"testing"

	"grefar"
)

// TestFacadeExtensions exercises every extension constructor through the
// public API end to end: alpha-fairness, a convex tariff, admission control,
// and the local-greedy baseline, all in one simulation.
func TestFacadeExtensions(t *testing.T) {
	const slots = 24 * 5
	inputs, err := grefar.ReferenceInputs(11, slots)
	if err != nil {
		t.Fatal(err)
	}

	weights := make([]float64, inputs.Cluster.M())
	for m, a := range inputs.Cluster.Accounts {
		weights[m] = a.Weight
	}
	af, err := grefar.NewAlphaFairness(1, weights)
	if err != nil {
		t.Fatal(err)
	}
	trf, err := grefar.NewQuadraticTariff(80)
	if err != nil {
		t.Fatal(err)
	}
	adm, err := grefar.NewThresholdAdmission(make([]float64, inputs.Cluster.J()))
	if err != nil {
		t.Fatal(err)
	}

	s, err := grefar.New(inputs.Cluster, grefar.Config{
		V:        7.5,
		Beta:     25,
		Fairness: af,
		Tariff:   trf,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := inputs
	in.Tariff = trf
	res, err := grefar.Simulate(in, s, grefar.SimOptions{
		Slots:           slots,
		ValidateActions: true,
		Admission:       adm, // zero limits mean no caps
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed <= 0 {
		t.Error("nothing processed")
	}
	if res.TotalDropped != 0 {
		t.Errorf("unlimited admission dropped %v jobs", res.TotalDropped)
	}
}

func TestFacadeLocalGreedy(t *testing.T) {
	inputs, err := grefar.ReferenceInputs(11, 48)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := grefar.NewLocalGreedy(inputs.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	res, err := grefar.Simulate(inputs, lg, grefar.SimOptions{Slots: 48, ValidateActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedulerName != "local-greedy" {
		t.Errorf("SchedulerName = %q", res.SchedulerName)
	}
}

func TestFacadeTieredTariff(t *testing.T) {
	trf, err := grefar.NewTieredTariff([]float64{50}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if trf.Cost(1, 60) != 70 { // 50*1 + 10*2
		t.Errorf("Cost = %v, want 70", trf.Cost(1, 60))
	}
	if _, err := grefar.NewTieredTariff([]float64{50}, []float64{2, 1}); err == nil {
		t.Error("non-convex tariff accepted")
	}
}

func TestFacadeQuadraticFairness(t *testing.T) {
	q, err := grefar.NewQuadraticFairness([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if q.Score([]float64{50, 50}, 100) != 0 {
		t.Error("ideal allocation should score 0")
	}
}
