// Distributed deployment: spin up one agent per data center on loopback TCP,
// connect a central controller running GreFar, and drive the control loop —
// the same protocol the grefar-agent and grefar-controller binaries speak,
// compressed into one process for demonstration.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"grefar"
	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/transport"
)

func main() {
	const slots = 24 * 14

	inputs, err := grefar.ReferenceInputs(2012, slots)
	if err != nil {
		log.Fatal(err)
	}
	c := inputs.Cluster

	// Start one agent per site, each serving its state over TCP.
	conns := make([]controller.AgentConn, c.N())
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        inputs.Prices[i],
			Availability: inputs.Availability,
		})
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := a.Serve(lis)
		defer srv.Close()
		fmt.Printf("agent for %s listening on %s\n", c.DataCenters[i].Name, srv.Addr())

		cli, err := transport.Dial(srv.Addr(), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		conns[i] = cli
	}

	scheduler, err := grefar.New(c, grefar.WithV(7.5), grefar.WithBeta(100))
	if err != nil {
		log.Fatal(err)
	}
	ct, err := controller.New(c, scheduler, conns)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := ct.Run(slots, inputs.Workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontroller ran %d slots across %d agents in %v\n", slots, c.N(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  avg energy cost    %.3f\n", res.AvgEnergy)
	fmt.Printf("  avg fairness score %.4f\n", res.AvgFairness)
	for i, d := range res.AvgLocalDelay {
		fmt.Printf("  %s: delay %.2f slots, %.2f work/slot\n", c.DataCenters[i].Name, d, res.AvgWorkPerDC[i])
	}
}
