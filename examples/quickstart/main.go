// Quickstart: build the paper's reference system, run GreFar for two
// simulated weeks, and print the headline metrics next to the Always
// baseline. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"grefar"
)

func main() {
	const slots = 24 * 14 // two weeks of hourly slots

	inputs, err := grefar.ReferenceInputs(2012, slots)
	if err != nil {
		log.Fatal(err)
	}

	scheduler, err := grefar.New(inputs.Cluster, grefar.WithV(7.5), grefar.WithBeta(100))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := grefar.NewAlways(inputs.Cluster)
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range []grefar.Scheduler{scheduler, baseline} {
		res, err := grefar.Simulate(inputs, s, grefar.WithSlots(slots), grefar.WithActionValidation(true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s energy=%.3f fairness=%.4f delayDC1=%.2f slots\n",
			res.SchedulerName, res.AvgEnergy, res.AvgFairness, res.AvgLocalDelay[0])
	}
}
