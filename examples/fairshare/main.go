// Fair sharing: sweep the energy-fairness parameter beta at fixed V and
// watch the fairness score climb toward 0 (ideal) while the energy cost
// rises only marginally — the paper's Fig. 3 story. The reference workload
// deliberately over-submits from org1 and under-submits from org2 relative
// to the 40/30/15/15 targets, so fairness-blind scheduling realizes an
// unfair allocation that beta corrects.
package main

import (
	"fmt"
	"log"

	"grefar"
)

func main() {
	const slots = 24 * 45

	fmt.Println("beta    avgEnergy  avgFairness  delayDC1")
	for _, beta := range []float64{0, 10, 50, 100, 300} {
		inputs, err := grefar.ReferenceInputs(2012, slots)
		if err != nil {
			log.Fatal(err)
		}
		s, err := grefar.New(inputs.Cluster, grefar.WithV(7.5), grefar.WithBeta(beta))
		if err != nil {
			log.Fatal(err)
		}
		res, err := grefar.Simulate(inputs, s, grefar.WithSlots(slots))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7g %-10.3f %-12.4f %.2f\n", beta, res.AvgEnergy, res.AvgFairness, res.AvgLocalDelay[0])
	}
	fmt.Println("\nFairness (0 is ideal) improves sharply with beta at a marginal energy premium,")
	fmt.Println("and delay *drops* because the fairness term encourages using resources (section VI-B2).")
}
