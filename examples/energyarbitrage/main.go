// Energy arbitrage: sweep the cost-delay parameter V and watch GreFar trade
// queueing delay for electricity cost — the paper's Fig. 2 story. Larger V
// makes the scheduler wait for lower prices (and cheaper sites), cutting the
// bill while queues grow O(V).
package main

import (
	"fmt"
	"log"

	"grefar"
)

func main() {
	const slots = 24 * 45

	fmt.Println("V       avgEnergy  delayDC1  delayDC2  maxQueue")
	for _, v := range []float64{0.1, 1, 2.5, 7.5, 20, 60} {
		inputs, err := grefar.ReferenceInputs(2012, slots)
		if err != nil {
			log.Fatal(err)
		}
		s, err := grefar.New(inputs.Cluster, grefar.WithV(v))
		if err != nil {
			log.Fatal(err)
		}
		res, err := grefar.Simulate(inputs, s, grefar.WithSlots(slots))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7g %-10.3f %-9.2f %-9.2f %.1f\n",
			v, res.AvgEnergy, res.AvgLocalDelay[0], res.AvgLocalDelay[1], res.MaxQueue)
	}
	fmt.Println("\nEnergy falls and delay rises monotonically in V (Theorem 1's O(1/V)-cost / O(V)-queue tradeoff).")
}
