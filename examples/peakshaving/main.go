// Peak shaving: run GreFar under the paper's section III-A2 extension where
// the electricity bill is an increasing convex function of each site's total
// draw (demand charges), with a diurnal interactive base load shifting the
// operating point. The scheduler then avoids not only expensive hours but
// also expensive *draw levels*, flattening each site's power profile.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"grefar"
	"grefar/internal/price"
	"grefar/internal/tariff"
)

func main() {
	const slots = 24 * 30

	inputs, err := grefar.ReferenceInputs(2012, slots)
	if err != nil {
		log.Fatal(err)
	}

	// A diurnal interactive base load per site (peaks in the afternoon).
	base := make([]price.Source, inputs.Cluster.N())
	for i := range base {
		tr, err := price.GenerateDiurnal(rand.New(rand.NewSource(int64(i))), slots, price.DiurnalParams{
			Mean: 30, Amplitude: 15, NoiseSigma: 2, PhaseHours: i * 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		base[i] = tr
	}

	quad, err := tariff.NewQuadratic(60) // marginal price doubles at 60 energy units
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tariff      scheduler-aware  avgBilledCost  delayDC1")
	for _, tc := range []struct {
		name  string
		trf   tariff.Tariff
		aware bool
	}{
		{"linear", tariff.Linear{}, true},
		{"quadratic (tariff-blind GreFar)", quad, false},
		{"quadratic (tariff-aware GreFar)", quad, true},
	} {
		in := inputs
		in.Tariff = tc.trf
		in.BaseLoad = base

		opts := []grefar.Option{grefar.WithV(7.5)}
		if tc.aware {
			opts = append(opts, grefar.WithTariff(tc.trf))
		}
		s, err := grefar.New(in.Cluster, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := grefar.Simulate(in, s, grefar.WithSlots(slots))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-33s %-14.3f %.2f\n", tc.name, res.AvgEnergy, res.AvgLocalDelay[0])
	}
	fmt.Println("\nUnder the convex tariff, the tariff-aware scheduler pays less by spreading")
	fmt.Println("work across sites and away from base-load peaks (peak shaving).")
}
