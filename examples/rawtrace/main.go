// Raw trace: start from a raw job log (what an operator actually has),
// group it into job types with the paper's preprocessing step, and schedule
// it with GreFar. This is the adoption path for real traces: parse your log
// into grefar.RawJob records, call GroupJobs, and drop the result into a
// cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"grefar"
	"grefar/internal/availability"
	"grefar/internal/price"
	"grefar/internal/sim"
	"grefar/internal/workload"
)

func main() {
	const slots = 24 * 7

	// Synthesize a "raw log": 2000 jobs from two organizations with
	// continuous demands and arrival times — the shape a production trace
	// parser would produce.
	rng := rand.New(rand.NewSource(42))
	jobs := make([]grefar.RawJob, 0, 2000)
	for n := 0; n < 2000; n++ {
		account := 0
		if rng.Float64() < 0.35 {
			account = 1
		}
		jobs = append(jobs, grefar.RawJob{
			Slot:     rng.Intn(slots),
			Demand:   0.2 + rng.ExpFloat64()*1.5, // heavy-tailed job sizes
			Account:  account,
			Eligible: []int{0, 1},
		})
	}

	types, trace, err := grefar.GroupJobs(jobs, 2, workload.GroupOptions{DemandQuantum: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grouped %d raw jobs into %d job types:\n", len(jobs), len(types))
	for _, jt := range types {
		fmt.Printf("  %-12s demand=%g peak-arrivals=%d\n", jt.Name, jt.Demand, jt.MaxArrival)
	}

	cluster := &grefar.Cluster{
		DataCenters: []grefar.DataCenter{
			{Name: "east", Servers: []grefar.ServerType{{Name: "std", Speed: 1.0, Power: 1.0}}},
			{Name: "west", Servers: []grefar.ServerType{{Name: "eco", Speed: 0.8, Power: 0.6}}},
		},
		JobTypes: types,
		Accounts: []grefar.Account{
			{Name: "batch-team", Weight: 0.6},
			{Name: "ml-team", Weight: 0.4},
		},
	}
	if err := cluster.Validate(); err != nil {
		log.Fatal(err)
	}

	prices, err := price.NewReferenceSources(7, slots)
	if err != nil {
		log.Fatal(err)
	}
	avail, err := availability.Generate(rand.New(rand.NewSource(7)), cluster, slots, availability.Params{
		Base:             [][]float64{{40}, {50}},
		InteractiveShare: 0.1,
		DiurnalDepth:     0.3,
		Jitter:           0.03,
		MinShare:         0.7,
	})
	if err != nil {
		log.Fatal(err)
	}

	inputs := sim.Inputs{
		Cluster:      cluster,
		Prices:       []price.Source{prices[0], prices[1]},
		Workload:     trace,
		Availability: avail,
	}
	scheduler, err := grefar.New(cluster, grefar.WithV(7.5), grefar.WithBeta(50))
	if err != nil {
		log.Fatal(err)
	}
	res, err := grefar.Simulate(inputs, scheduler, grefar.WithSlots(slots), grefar.WithActionValidation(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscheduled the week: energy=%.2f fairness=%.4f processed %.0f of %.0f jobs\n",
		res.AvgEnergy, res.AvgFairness, res.TotalProcessed, res.TotalArrived)
	fmt.Printf("p95 delay east=%.1f west=%.1f slots\n",
		res.DelayHistograms[0].Quantile(0.95), res.DelayHistograms[1].Quantile(0.95))
}
