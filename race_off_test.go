//go:build !race

package grefar_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
