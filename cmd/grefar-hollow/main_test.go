package main

import (
	"context"
	"strings"
	"testing"
)

// TestThousandAgentsWithMidRunKill is the acceptance run: >= 1000 hollow
// agents in this one process, real controller slot ticks over the mux wire,
// 5% of the fleet killed mid-run, invariant checker green, everyone healthy
// at the horizon.
func TestThousandAgentsWithMidRunKill(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-agent run skipped in -short mode")
	}
	var out strings.Builder
	err := run(context.Background(), []string{
		"-agents", "1000", "-slots", "9",
		"-kill-frac", "0.05", "-kill-at", "3", "-revive-at", "6",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"hollow fleet: 1000 agents",
		"killing 50 agents over [3,6)",
		"invariant checker: ok on every applied slot",
		"final healthy 1000/1000",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q\noutput:\n%s", want, out.String())
		}
	}
}

// TestSmallRunNoKill exercises the no-outage path and the summary shape.
func TestSmallRunNoKill(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-agents", "16", "-slots", "5"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "final healthy 16/16") {
		t.Errorf("output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "killing") {
		t.Errorf("no-kill run mentions killing:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-agents", "0"},
		{"-slots", "0"},
		{"-kill-frac", "1.5"},
		{"-kill-frac", "0.05", "-kill-at", "8", "-revive-at", "4", "-slots", "10"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCancelStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := run(ctx, []string{"-agents", "8", "-slots", "50"}, &out); err == nil {
		t.Error("canceled run returned nil")
	}
}
