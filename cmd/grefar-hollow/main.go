// Command grefar-hollow runs a kubemark-style hollow fleet: thousands of
// real agent state machines hosted in one process behind a multiplexed
// gob-over-TCP listener, driven by the real central controller for a fixed
// horizon. It is the scale harness for the distributed control plane — the
// way to watch gather/decide/scatter, health tracking, and degraded-mode
// masking behave at fleet sizes no laptop could host as real processes.
//
// Usage:
//
//	grefar-hollow [-agents 1000] [-slots 60] [-seed 2012] [-conns 4]
//	              [-partitions 1] [-kill-frac 0.05] [-kill-at slots/3]
//	              [-revive-at 2*slots/3] [-V 7.5] [-beta 100] [-check]
//	              [-metrics :9300] [-pprof]
//
// With -kill-frac > 0 the harness kills that fraction of the fleet at
// -kill-at and revives it at -revive-at, so one run demonstrates the full
// mask -> probe -> resync -> rejoin cycle; the invariant checker (-check,
// default on) verifies every applied slot. With -metrics, the controller's
// health gauges, RTT histograms, and slot telemetry are served on /metrics.
// With -partitions > 1 the fleet is driven by the partitioned control plane
// — concurrent per-partition gather/decide/scatter with optimistic commits
// against the shared queue board — and the run report includes each
// partition's commit/conflict counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"grefar/internal/controller"
	"grefar/internal/controlplane"
	"grefar/internal/core"
	"grefar/internal/hollow"
	"grefar/internal/invariant"
	"grefar/internal/model"
	"grefar/internal/sched"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// slotDriver is the slice of the control loop the harness drives: the single
// controller and the partitioned plane both satisfy it.
type slotDriver interface {
	RunSlotContext(ctx context.Context, t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error)
	Health() []controller.AgentHealth
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-hollow:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("grefar-hollow", flag.ContinueOnError)
	agents := fs.Int("agents", 1000, "hollow fleet size (one real agent state machine per site)")
	slots := fs.Int("slots", 60, "horizon in slots")
	seed := fs.Int64("seed", 2012, "seed for the synthetic workload")
	conns := fs.Int("conns", 0, "multiplexed client connections carrying the fleet's traffic (0 = default)")
	partitions := fs.Int("partitions", 1, "controller partitions (>1 drives the fleet with the partitioned control plane)")
	killFrac := fs.Float64("kill-frac", 0, "fraction of agents killed mid-run (0 disables the outage)")
	killAt := fs.Int("kill-at", 0, "slot the outage starts (default slots/3)")
	reviveAt := fs.Int("revive-at", 0, "slot the killed agents come back (default 2*slots/3)")
	v := fs.Float64("V", 7.5, "cost-delay parameter")
	beta := fs.Float64("beta", 100, "energy-fairness parameter")
	check := fs.Bool("check", true, "verify per-slot invariants on the applied trajectory")
	metricsAddr := fs.String("metrics", "", "address to serve /metrics and /healthz on (empty disables)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ on the metrics mux")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *agents <= 0 || *slots <= 0 {
		return fmt.Errorf("need positive -agents and -slots")
	}
	if *partitions < 1 || *partitions > *agents {
		return fmt.Errorf("-partitions %d outside [1,%d]", *partitions, *agents)
	}
	if *killFrac < 0 || *killFrac >= 1 {
		return fmt.Errorf("-kill-frac %v outside [0,1)", *killFrac)
	}
	if *killAt <= 0 {
		*killAt = *slots / 3
	}
	if *reviveAt <= 0 {
		*reviveAt = 2 * *slots / 3
	}
	if *killFrac > 0 && !(*killAt < *reviveAt && *reviveAt < *slots) {
		return fmt.Errorf("need kill-at < revive-at < slots, got %d, %d, %d", *killAt, *reviveAt, *slots)
	}

	in, err := hollow.NewScaleInputs(*seed, *agents, *slots)
	if err != nil {
		return err
	}
	fleet, err := hollow.NewFleet(in, hollow.Options{Conns: *conns})
	if err != nil {
		return err
	}
	defer fleet.Close()

	reg := telemetry.NewRegistry()
	obs := []telemetry.SlotObserver{telemetry.NewRegistryObserver(reg)}
	var ck *invariant.Checker
	if *check {
		ck = invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
		obs = append(obs, ck)
	}
	var ct slotDriver
	var plane *controlplane.Plane
	if *partitions > 1 {
		plane, err = controlplane.New(in.Cluster, fleet.Conns(), controlplane.Config{
			Partitions: *partitions,
			NewScheduler: func() (sched.Scheduler, error) {
				return core.New(in.Cluster, core.Config{V: *v, Beta: *beta})
			},
			Policy:   controller.Degrade,
			Observer: telemetry.Multi(obs...),
			Registry: reg,
		})
		if err != nil {
			return err
		}
		ct = plane
	} else {
		g, err := core.New(in.Cluster, core.Config{V: *v, Beta: *beta})
		if err != nil {
			return err
		}
		ctrl, err := controller.New(in.Cluster, g, fleet.Conns(),
			controller.WithObserver(telemetry.Multi(obs...)),
			controller.WithFailurePolicy(controller.Degrade),
			controller.WithHealthMetrics(reg),
		)
		if err != nil {
			return err
		}
		ct = ctrl
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv = &http.Server{
			Addr:    *metricsAddr,
			Handler: telemetry.NewMux(reg, telemetry.MuxOptions{EnablePprof: *pprofOn}),
		}
		go metricsSrv.ListenAndServe()
		defer metricsSrv.Close()
	}

	killed := killSet(*agents, *killFrac)
	fmt.Fprintf(out, "hollow fleet: %d agents on %s, %d slots", fleet.N(), fleet.Addr(), *slots)
	if *partitions > 1 {
		fmt.Fprintf(out, ", %d controller partitions", *partitions)
	}
	if len(killed) > 0 {
		fmt.Fprintf(out, ", killing %d agents over [%d,%d)", len(killed), *killAt, *reviveAt)
	}
	fmt.Fprintln(out)

	ticks := make([]time.Duration, 0, *slots)
	var energy float64
	degraded := 0
	start := time.Now()
	for t := 0; t < *slots; t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A dead accept loop would otherwise surface only as gather timeouts
		// slots later; fail the run the moment Serve reports it.
		select {
		case serr := <-fleet.ServeErr():
			if serr != nil {
				return fmt.Errorf("slot %d: fleet listener died: %w", t, serr)
			}
		default:
		}
		if len(killed) > 0 && t == *killAt {
			for _, i := range killed {
				fleet.Kill(i)
			}
		}
		if len(killed) > 0 && t == *reviveAt {
			for _, i := range killed {
				fleet.Revive(i)
			}
		}
		t0 := time.Now()
		_, _, acks, err := ct.RunSlotContext(ctx, t, in.Workload.Arrivals(t))
		if err != nil {
			return fmt.Errorf("slot %d: %w", t, err)
		}
		ticks = append(ticks, time.Since(t0))
		for _, ack := range acks {
			energy += ack.Energy
		}
		for _, h := range ct.Health() {
			if h != controller.Healthy {
				degraded++
				break
			}
		}
	}
	total := time.Since(start)
	if ck != nil {
		if err := ck.Err(); err != nil {
			return fmt.Errorf("invariant check: %w", err)
		}
	}

	healthy := 0
	for _, h := range ct.Health() {
		if h == controller.Healthy {
			healthy++
		}
	}
	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	fmt.Fprintf(out, "completed %d slots in %v (%.1f slots/s)\n", *slots, total.Round(time.Millisecond), float64(*slots)/total.Seconds())
	fmt.Fprintf(out, "slot tick p50 %v  p99 %v\n",
		ticks[len(ticks)/2].Round(10*time.Microsecond), ticks[(len(ticks)*99)/100].Round(10*time.Microsecond))
	fmt.Fprintf(out, "degraded slots %d; energy/slot %.1f; final healthy %d/%d\n",
		degraded, energy/float64(*slots), healthy, fleet.N())
	if plane != nil {
		for _, st := range plane.Stats() {
			fmt.Fprintf(out, "partition %d: %d agents, %d commits, %d conflicts, %d forced\n",
				st.Partition, st.Owned, st.Commits, st.Conflicts, st.Forced)
		}
	}
	if *check {
		fmt.Fprintln(out, "invariant checker: ok on every applied slot")
	}
	if healthy != fleet.N() {
		return fmt.Errorf("%d agents never rejoined", fleet.N()-healthy)
	}
	return nil
}

// killSet picks which agents a kill-frac outage takes down: every site from 1
// upward with a stride, never site 0, so the outage spreads across the fleet's
// site classes instead of taking one contiguous stripe.
func killSet(n int, frac float64) []int {
	k := int(float64(n) * frac)
	if k <= 0 {
		return nil
	}
	if k >= n {
		k = n - 1
	}
	out := make([]int, k)
	for i := range out {
		out[i] = 1 + (i*7)%(n-1)
	}
	seen := make(map[int]bool, k)
	uniq := out[:0]
	for _, i := range out {
		if !seen[i] {
			seen[i] = true
			uniq = append(uniq, i)
		}
	}
	return uniq
}
