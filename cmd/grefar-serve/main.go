// Command grefar-serve runs GreFar as a long-lived scheduling service: jobs
// arrive over HTTP (single objects, arrays, or JSONL batches), slots execute
// on a wall-clock cadence or on demand (POST /v1/tick), the V/beta/tariff
// knobs hot-reload at slot boundaries (POST /v1/reconfigure), and the whole
// session state — queues with their arrival slots, the solver's warm-start
// iterate, the pending ingest buffer — survives restarts through durable
// checkpoints.
//
// Usage:
//
//	grefar-serve -listen 127.0.0.1:8080 -snapshot-dir /var/lib/grefar \
//	             [-seed 2012] [-v 7.5] [-beta 100] [-warm] [-check] \
//	             [-snapshot-every 20] [-tick 1s] [-pprof]
//
// With -snapshot-dir the daemon restores the newest intact snapshot at boot
// (falling back to the previous generation if the current one is torn),
// checkpoints every -snapshot-every served slots, and writes a final
// checkpoint on SIGINT/SIGTERM. With -tick 0 (the default) slots execute
// only via POST /v1/tick, which is the deterministic mode: drive it from a
// cron or an upstream admission controller.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grefar"
	"grefar/internal/serve"
	"grefar/internal/serve/snapshot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	a, err := newApp(args)
	if err != nil {
		return err
	}
	defer a.Close()
	if a.Boot != nil {
		msg := "restored"
		if a.Boot.Fallback {
			msg = "restored from fallback generation (current snapshot was rejected)"
		}
		fmt.Printf("grefar-serve: %s %s at slot %d\n", msg, a.Boot.Path, a.Server.Session().Slot())
	}

	lis, err := net.Listen("tcp", a.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: a.Server}
	go func() { _ = srv.Serve(lis) }()
	defer srv.Close()
	fmt.Printf("grefar-serve: serving on http://%s (slot %d)\n", lis.Addr(), a.Server.Session().Slot())

	if a.tickEvery > 0 {
		go a.tickLoop(ctx)
	}

	<-ctx.Done()
	fmt.Println("grefar-serve: shutting down")
	return a.Shutdown()
}

// app is a built daemon: the HTTP server fronting the session, plus what run
// needs to serve and shut it down. Tests construct one with newApp and mount
// a.Server on an httptest server instead of a real listener.
type app struct {
	// Server handles every endpoint; it is the daemon's http.Handler.
	Server *serve.Server
	// Boot describes the snapshot restored at construction; nil on a fresh
	// start (or without -snapshot-dir).
	Boot *snapshot.LoadResult

	listen    string
	tickEvery time.Duration
	hasStore  bool
}

// tickLoop executes one slot per -tick interval until the context ends.
// Failed slots are logged and retried next interval: a transient checkpoint
// failure must not kill the control loop.
func (a *app) tickLoop(ctx context.Context) {
	t := time.NewTicker(a.tickEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := a.Server.Tick(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "grefar-serve: tick:", err)
			}
		}
	}
}

// Shutdown writes the graceful-exit checkpoint (when a store is configured)
// and closes the session.
func (a *app) Shutdown() error {
	var err error
	if a.hasStore {
		if err = a.Server.Checkpoint(); err == nil {
			fmt.Printf("grefar-serve: final checkpoint at slot %d\n", a.Server.Session().Slot())
		}
	}
	if cerr := a.Server.Session().Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the app without a graceful checkpoint (the error path).
func (a *app) Close() error { return a.Server.Session().Close() }

// newApp parses flags and assembles the session, snapshot store, and HTTP
// server, restoring the newest snapshot when one exists.
func newApp(args []string) (*app, error) {
	fs := flag.NewFlagSet("grefar-serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "address to listen on")
	seed := fs.Int64("seed", 2012, "environment seed (prices and availability)")
	horizon := fs.Int("horizon", 4096, "length of the materialized environment (slots wrap past it)")
	v := fs.Float64("v", 7.5, "cost-delay parameter V")
	beta := fs.Float64("beta", 100, "energy-fairness parameter beta")
	warm := fs.Bool("warm", false, "warm-start the convex slot solve from the previous slot")
	away := fs.Bool("away", false, "use away-step Frank-Wolfe for the convex slot solve")
	check := fs.Bool("check", false, "re-verify every slot against the paper's queue dynamics")
	snapDir := fs.String("snapshot-dir", "", "directory for durable checkpoints (empty disables)")
	snapEvery := fs.Int("snapshot-every", 20, "checkpoint automatically every n served slots (0 disables)")
	tick := fs.Duration("tick", 0, "wall-clock slot length (0 = slots execute only via POST /v1/tick)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ on the handler")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	in, err := grefar.ReferenceInputs(*seed, *horizon)
	if err != nil {
		return nil, fmt.Errorf("inputs: %w", err)
	}
	// Serving mode: every arrival comes through the ingest endpoints.
	in.Workload = nil

	reg := grefar.NewRegistry()
	s, err := grefar.Open(
		grefar.WithInputs(in),
		grefar.WithV(*v), grefar.WithBeta(*beta),
		grefar.WithWarmStart(*warm), grefar.WithAwaySteps(*away),
		grefar.WithActionValidation(true), grefar.WithCheck(*check),
		grefar.WithTelemetry(reg),
	)
	if err != nil {
		return nil, err
	}

	var store *snapshot.Store
	if *snapDir != "" {
		store, err = snapshot.NewStore(*snapDir)
		if err != nil {
			return nil, fmt.Errorf("snapshot store: %w", err)
		}
	}

	sv, err := serve.NewServer(serve.ServerConfig{
		Session:       s,
		Store:         store,
		SnapshotEvery: *snapEvery,
		Registry:      reg,
		EnablePprof:   *pprofOn,
	})
	if err != nil {
		return nil, err
	}
	boot, err := sv.RestoreOnBoot()
	if err != nil {
		return nil, err
	}
	return &app{
		Server:    sv,
		Boot:      boot,
		listen:    *listen,
		tickEvery: *tick,
		hasStore:  store != nil,
	}, nil
}
