package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"grefar"
)

// e2eSchedule is the deterministic ingest stream for the end-to-end test:
// the jobs POSTed before each slot's tick.
func e2eSchedule(slots, types int) [][]grefar.Job {
	out := make([][]grefar.Job, slots)
	for s := range out {
		var jobs []grefar.Job
		for typ := 0; typ < types; typ++ {
			if n := (s + 3*typ) % 7; n > 0 {
				jobs = append(jobs, grefar.Job{Type: typ, Count: n})
			}
		}
		out[s] = jobs
	}
	return out
}

func mustPost(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

// lengthsJSON marshals a backlog snapshot; the end-to-end comparison is on
// these bytes, so "matches the golden run" means byte-for-byte.
func lengthsJSON(t *testing.T, l grefar.QueueLengths) string {
	t.Helper()
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServeKillRestartMatchesGolden is the serving-mode acceptance test:
// ingest jobs over HTTP and tick 20 slots, kill the daemon without any
// graceful shutdown, restart it from the snapshot directory, tick 20 more —
// and require the full 40-slot backlog trajectory to match an uninterrupted
// in-process session byte-for-byte, with the invariant checker on throughout.
func TestServeKillRestartMatchesGolden(t *testing.T) {
	const slots, split, types = 40, 20, 8
	schedule := e2eSchedule(slots, types)
	dir := filepath.Join(t.TempDir(), "snaps")
	flags := []string{
		"-seed", "2012", "-horizon", "64", "-v", "7.5", "-beta", "100", "-warm",
		"-check", "-snapshot-dir", dir, "-snapshot-every", "5",
	}

	// Golden: the uninterrupted session, driven through the public API with
	// the exact configuration the daemon builds from these flags.
	in, err := grefar.ReferenceInputs(2012, 64)
	if err != nil {
		t.Fatal(err)
	}
	in.Workload = nil
	golden, err := grefar.Open(
		grefar.WithInputs(in),
		grefar.WithV(7.5), grefar.WithBeta(100), grefar.WithWarmStart(true),
		grefar.WithActionValidation(true), grefar.WithCheck(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, slots)
	for slot := 0; slot < slots; slot++ {
		if _, err := golden.Submit(schedule[slot]); err != nil {
			t.Fatal(err)
		}
		if _, err := golden.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
		want[slot] = lengthsJSON(t, golden.Lengths())
	}

	drive := func(a *app, ts *httptest.Server, from, to int, got []string) {
		t.Helper()
		for slot := from; slot < to; slot++ {
			if jobs := schedule[slot]; len(jobs) > 0 {
				body, err := json.Marshal(jobs)
				if err != nil {
					t.Fatal(err)
				}
				mustPost(t, ts.URL+"/v1/jobs", string(body))
			}
			mustPost(t, ts.URL+"/v1/tick", "")
			got[slot] = lengthsJSON(t, a.Server.Session().Lengths())
		}
	}
	got := make([]string, slots)

	// Phase 1: boot fresh, ingest over HTTP, tick to slot 20. With cadence 5
	// the last durable checkpoint lands exactly at slot 20.
	a1, err := newApp(flags)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Boot != nil {
		t.Fatalf("fresh boot restored %+v", a1.Boot)
	}
	ts1 := httptest.NewServer(a1.Server)
	drive(a1, ts1, 0, split, got)
	ts1.Close()
	// SIGKILL: the process dies here. No graceful checkpoint, no Close — the
	// restart may rely only on what the cadence already made durable.

	// Phase 2: a new process boots from the snapshot directory and resumes.
	a2, err := newApp(flags)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Boot == nil || a2.Boot.Fallback {
		t.Fatalf("restart did not restore cleanly: %+v", a2.Boot)
	}
	if slot := a2.Server.Session().Slot(); slot != split {
		t.Fatalf("restarted at slot %d, want %d", slot, split)
	}
	ts2 := httptest.NewServer(a2.Server)
	defer ts2.Close()
	drive(a2, ts2, split, slots, got)

	for slot := range want {
		if got[slot] != want[slot] {
			t.Fatalf("backlog trajectory diverged at slot %d:\n got %s\nwant %s", slot, got[slot], want[slot])
		}
	}

	// Graceful shutdown writes a final checkpoint at slot 40...
	if err := a2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// ...which the next boot resumes from.
	a3, err := newApp(flags)
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Close()
	if a3.Boot == nil || a3.Server.Session().Slot() != slots {
		t.Fatalf("post-shutdown boot: %+v at slot %d", a3.Boot, a3.Server.Session().Slot())
	}
}

// TestServeFlagValidation exercises the daemon's constructor error paths.
func TestServeFlagValidation(t *testing.T) {
	if _, err := newApp([]string{"-v", "-1"}); err == nil {
		t.Fatal("negative V accepted")
	}
	if _, err := newApp([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestServeStatusAndMetrics smoke-tests the observability surface end to end
// through the daemon's wiring (shared registry, DC-labeled families).
func TestServeStatusAndMetrics(t *testing.T) {
	a, err := newApp([]string{"-horizon", "64", "-snapshot-every", "0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ts := httptest.NewServer(a.Server)
	defer ts.Close()

	mustPost(t, ts.URL+"/v1/jobs", `{"type":0,"count":3}`)
	mustPost(t, ts.URL+"/v1/tick?n=2", "")

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Slot int     `json:"slot"`
		V    float64 `json:"v"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Slot != 2 || status.V != 7.5 {
		t.Fatalf("status: %+v", status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"grefar_serve_ticks_total 2", "grefar_slot"} {
		if !strings.Contains(string(metrics), fam) {
			t.Fatalf("metrics missing %q", fam)
		}
	}
}
