// Command grefar-sim runs the paper's evaluation experiments from the
// command line and renders their tables and figures as text (with optional
// CSV export for external plotting).
//
// Usage:
//
//	grefar-sim -experiment table1|fig1|fig2|fig3|fig4|fig5|workshare|theorem1|\
//	           ablation|robustness|delays|mpc|churn|events|all \
//	           [-slots 2000] [-seed 2012] [-workers 0] [-day 30] [-csv out.csv] \
//	           [-events out.jsonl] [-chaos-seed 2012] [-kill 2] [-down 6]
//
// Experiments that sweep several configurations (fig2, fig3, fig4, fig5,
// robustness, delays, theorem1, mpc) fan their independent runs across
// -workers goroutines (0 = one per CPU); the output is byte-identical at any
// worker count because every run is seeded independently and results are
// assembled in sweep order.
//
// The events experiment streams one JSON object per simulated slot (the
// telemetry.SlotEvent schema) to -events, or to stdout when the flag is
// empty; it is not part of -experiment all. SIGINT stops a long run at the
// next slot boundary.
//
// The churn experiment (also outside -experiment all) runs the distributed
// control loop under the Degrade failure policy with -kill agents partitioned
// for -down slots each, every fault drawn from -chaos-seed, and reports
// recovery times and queue-backlog inflation against a fault-free baseline.
//
// The scale experiment (also outside -experiment all) sweeps hollow fleets of
// -scale-agents in-process agents through the real control loop for
// -scale-slots slots each, measuring slot-tick latency percentiles,
// throughput, allocation rate, and heap ceiling — fault-free and, with
// -scale-chaos, under partitions of -kill-frac of the fleet plus call drops.
//
// The solverscale experiment (also outside -experiment all) sweeps the slot
// solvers themselves — monolithic, sparse, decomposed, and pooled decomposed
// — over large synthetic instances of -solver-shapes (N x J) at
// -solver-densities active-pair fractions, measuring per-decision latency and
// allocation rate for -scale-slots drifting slots per cell.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"grefar"
	"grefar/internal/experiments"
	"grefar/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("grefar-sim", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which experiment to run: table1, fig1, fig2, fig3, fig4, fig5, workshare, theorem1, ablation, robustness, delays, mpc, churn, scale, solverscale, events, or all")
	slots := fs.Int("slots", 2000, "simulation horizon in hourly slots")
	seed := fs.Int64("seed", 2012, "seed for every stochastic input")
	day := fs.Int("day", 30, "snapshot day for fig5")
	csvPath := fs.String("csv", "", "optional path to write the experiment's series as CSV")
	eventsPath := fs.String("events", "", "optional path for the events experiment's JSONL stream (default stdout)")
	v := fs.Float64("V", 7.5, "cost-delay parameter for the events experiment")
	beta := fs.Float64("beta", 100, "energy-fairness parameter for the events experiment")
	check := fs.Bool("check", false, "verify per-slot invariants (queue dynamics, feasibility, conservation) during every run; fail on the first violation")
	workers := fs.Int("workers", 0, "how many simulation runs to execute concurrently within an experiment (0 = one per CPU); results are identical at any setting")
	chaosSeed := fs.Int64("chaos-seed", 2012, "seed for the churn experiment's fault streams")
	kill := fs.Int("kill", 2, "how many agents the churn experiment partitions")
	down := fs.Int("down", 6, "how many slots each churn outage lasts")
	scaleAgents := fs.String("scale-agents", "100,500,1000,2000", "comma-separated fleet sizes for the scale experiment")
	scaleSlots := fs.Int("scale-slots", 40, "per-fleet-size horizon for the scale experiment")
	scaleChaos := fs.Bool("scale-chaos", true, "also run each scale point with injected churn and drops")
	scaleParts := fs.Int("scale-partitions", 4, "partitioned-control-plane arm of the scale experiment (<=1 disables)")
	killFrac := fs.Float64("kill-frac", 0.05, "fraction of agents the scale chaos variant partitions")
	solverShapes := fs.String("solver-shapes", "50x25,100x50,200x100", "comma-separated NxJ grid points for the solverscale experiment")
	solverDensities := fs.String("solver-densities", "0.1,0.5", "comma-separated active-pair fractions for the solverscale experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, Slots: *slots, Check: *check, Workers: *workers, Context: ctx}
	if *experiment == "all" {
		// In the all-experiments sweep the snapshot day must fit whatever
		// horizon was chosen; explicit single-experiment runs still reject
		// out-of-range days.
		if lastDay := *slots/24 - 1; *day > lastDay {
			*day = lastDay
		}
	}

	runners := map[string]func() error{
		"events":    func() error { return runEvents(ctx, out, cfg, *v, *beta, *eventsPath) },
		"table1":    func() error { return runTableI(out, cfg) },
		"fig1":      func() error { return runFig1(out, cfg, *csvPath) },
		"fig2":      func() error { return runFig2(out, cfg, *csvPath) },
		"fig3":      func() error { return runFig3(out, cfg, *csvPath) },
		"fig4":      func() error { return runFig4(out, cfg, *csvPath) },
		"fig5":      func() error { return runFig5(out, cfg, *day, *csvPath) },
		"workshare": func() error { return runWorkShare(out, cfg) },
		"theorem1":  func() error { return runTheorem1(out, cfg) },
		"ablation":  func() error { return runAblation(out, cfg) },
		"mpc": func() error {
			mcfg := cfg
			if mcfg.Slots > 24*30 {
				mcfg.Slots = 24 * 30 // one window LP per slot dominates runtime
			}
			res, err := experiments.MPCComparison(mcfg, 24)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "grefar(V=7.5)      energy %.3f  delayDC1 %.2f\n", res.GreFarEnergy, res.GreFarDelay)
			fmt.Fprintf(out, "oracle-mpc(W=%d)   energy %.3f  delayDC1 %.2f\n", res.Window, res.MPCEnergy, res.MPCDelay)
			fmt.Fprintf(out, "always             energy %.3f\n", res.AlwaysEnergy)
			fmt.Fprintf(out, "perfect-foresight advantage over GreFar: %.1f%%\n", 100*res.ForesightAdvantageFrac)
			return nil
		},
		"delays": func() error {
			res, err := experiments.DelayTails(cfg)
			if err != nil {
				return err
			}
			table := make([][]string, len(res.V))
			for x := range res.V {
				table[x] = []string{
					strconv.FormatFloat(res.V[x], 'g', -1, 64),
					report.FormatFloat(res.MeanDC1[x], 2),
					report.FormatFloat(res.P50[x], 1),
					report.FormatFloat(res.P95[x], 1),
					report.FormatFloat(res.P99[x], 1),
					report.FormatFloat(res.MaxDC1[x], 1),
				}
			}
			if err := report.Table(out, []string{"V", "Mean", "p50", "p95", "p99", "Max"}, table); err != nil {
				return err
			}
			return report.Histogram(out, "\nDC1 per-job delay distribution at V=7.5 (jobs per bucket):",
				res.RefBounds, res.RefCounts, 40)
		},
		"scale": func() error {
			agents, err := parseIntList(*scaleAgents)
			if err != nil {
				return fmt.Errorf("-scale-agents: %w", err)
			}
			return runScale(out, experiments.ScaleConfig{
				Seed:       *seed,
				ChaosSeed:  *chaosSeed,
				Agents:     agents,
				Slots:      *scaleSlots,
				Chaos:      *scaleChaos,
				Partitions: *scaleParts,
				KillFrac:   *killFrac,
				Check:      *check,
				Context:    ctx,
			})
		},
		"solverscale": func() error {
			shapes, err := parseShapeList(*solverShapes)
			if err != nil {
				return fmt.Errorf("-solver-shapes: %w", err)
			}
			densities, err := parseFloatList(*solverDensities)
			if err != nil {
				return fmt.Errorf("-solver-densities: %w", err)
			}
			return runSolverScale(out, experiments.SolverScaleConfig{
				Seed:      *seed,
				Shapes:    shapes,
				Densities: densities,
				Slots:     *scaleSlots,
				Beta:      *beta,
				V:         *v,
				Workers:   *workers,
				Context:   ctx,
			})
		},
		"churn": func() error {
			return runChurn(out, experiments.ChurnConfig{
				Seed:      *seed,
				ChaosSeed: *chaosSeed,
				Slots:     *slots,
				Kill:      *kill,
				Down:      *down,
			})
		},
		"robustness": func() error {
			res, err := experiments.Robustness(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "GreFar vs Always across 5 seeds (V=7.5, beta=100):\n")
			fmt.Fprintf(out, "  grefar energy   %s\n  always energy   %s\n", res.GreFarEnergy, res.AlwaysEnergy)
			fmt.Fprintf(out, "  energy gap      %s (fraction of Always' bill)\n", res.EnergyGapFrac)
			fmt.Fprintf(out, "  fairness gap    %s (positive = GreFar fairer)\n", res.FairnessGap)
			fmt.Fprintf(out, "  delay gap       %s slots\n", res.DelayGap)
			fmt.Fprintf(out, "  ordering violations: %d\n", res.Violations)
			return nil
		},
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "workshare", "theorem1", "ablation", "robustness", "delays", "mpc"} {
			fmt.Fprintf(out, "\n=== %s ===\n", name)
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return r()
}

// runChurn runs the fault-tolerance churn experiment: kill -kill agents for
// -down slots each (staggered), scheduled around under the Degrade policy,
// and report recovery times and queue-backlog inflation against a fault-free
// baseline of the same seeds.
func runChurn(out io.Writer, cfg experiments.ChurnConfig) error {
	res, err := experiments.Churn(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "churn over %d slots: %d degraded slots\n", res.Slots, res.DegradedSlots)
	for _, r := range res.Recoveries {
		fmt.Fprintf(out, "  agent %d down [%d,%d): rejoined %d slot(s) after the outage\n",
			r.Agent, r.From, r.To, r.RecoverySlots)
	}
	fmt.Fprintf(out, "  avg energy: baseline %.3f, chaos %.3f\n", res.BaselineEnergy, res.ChaosEnergy)
	fmt.Fprintf(out, "  backlog inflation: peak %.1f jobs, at horizon %.1f jobs (final %.1f vs %.1f)\n",
		res.MaxBacklogInflation, res.FinalBacklogInflation, res.ChaosFinalBacklog, res.BaselineFinalBacklog)
	return nil
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseShapeList parses a comma-separated list of NxJ shapes.
func parseShapeList(s string) ([][2]int, error) {
	var out [][2]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, j, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("bad shape %q (want NxJ)", part)
		}
		nv, err1 := strconv.Atoi(strings.TrimSpace(n))
		jv, err2 := strconv.Atoi(strings.TrimSpace(j))
		if err1 != nil || err2 != nil || nv <= 0 || jv <= 0 {
			return nil, fmt.Errorf("bad shape %q", part)
		}
		out = append(out, [2]int{nv, jv})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseFloatList parses a comma-separated list of floats in [0, 1].
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("bad fraction %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// runSolverScale runs the slot-solver scale sweep: per instance shape and
// backlog density, each solver arm decides the same drifting slot sequence.
func runSolverScale(out io.Writer, cfg experiments.SolverScaleConfig) error {
	res, err := experiments.SolverScale(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, len(res.Points))
	for x, pt := range res.Points {
		table[x] = []string{
			strconv.Itoa(pt.N),
			strconv.Itoa(pt.J),
			report.FormatFloat(pt.Density, 2),
			strconv.Itoa(pt.ActivePairs),
			pt.Solver,
			strconv.Itoa(pt.Workers),
			report.FormatFloat(pt.DecideMicros, 1),
			report.FormatFloat(pt.AllocsPerDecide, 0),
			report.FormatFloat(pt.Objective, 1),
		}
	}
	return report.Table(out, []string{"N", "J", "Density", "Active", "Solver", "Workers", "us/decide", "Allocs/decide", "Objective"}, table)
}

// runScale runs the hollow-fleet scale sweep: per agent count, a real
// controller drives N in-process agents over the multiplexed gob-over-TCP
// wire, fault-free and (with -scale-chaos) under injected churn.
func runScale(out io.Writer, cfg experiments.ScaleConfig) error {
	res, err := experiments.Scale(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, len(res.Points))
	for x, pt := range res.Points {
		mode := "clean"
		if pt.Chaos {
			mode = "chaos"
		}
		parts := pt.Partitions
		if parts < 1 {
			parts = 1
		}
		table[x] = []string{
			strconv.Itoa(pt.Agents),
			mode,
			strconv.Itoa(parts),
			pt.P50.Round(10 * time.Microsecond).String(),
			pt.P99.Round(10 * time.Microsecond).String(),
			report.FormatFloat(pt.SlotsPerSec, 1),
			report.FormatFloat(pt.AllocsPerSlot, 0),
			report.FormatFloat(pt.HeapMB, 1),
			strconv.Itoa(pt.DegradedSlots),
			strconv.FormatInt(pt.Conflicts, 10),
			report.FormatFloat(pt.EnergyPerSlot, 1),
			report.FormatFloat(pt.FinalBacklog, 0),
		}
	}
	return report.Table(out, []string{"Agents", "Mode", "Parts", "p50 tick", "p99 tick", "Slots/s", "Allocs/slot", "Heap MiB", "Degraded", "Conflicts", "Energy/slot", "Backlog"}, table)
}

func runTableI(out io.Writer, cfg experiments.Config) error {
	rows, err := experiments.TableI(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.DC,
			report.FormatFloat(r.Speed, 2),
			report.FormatFloat(r.Power, 2),
			report.FormatFloat(r.AvgPrice, 3),
			report.FormatFloat(r.CostPerWork, 3),
		}
	}
	return report.Table(out, []string{"DC", "Speed", "Power", "Avg Price", "Avg Energy Cost/Unit Work"}, table)
}

func runFig1(out io.Writer, cfg experiments.Config, csvPath string) error {
	res, err := experiments.Fig1(cfg)
	if err != nil {
		return err
	}
	prices := make([]report.Series, len(res.Prices))
	for i, p := range res.Prices {
		prices[i] = report.Series{Name: "DC" + strconv.Itoa(i+1), Values: p}
	}
	if err := report.Chart(out, "Fig 1 (top): 3-day electricity prices", prices, 72, 10); err != nil {
		return err
	}
	orgs := make([]report.Series, len(res.OrgWork))
	for m, w := range res.OrgWork {
		orgs[m] = report.Series{Name: "org" + strconv.Itoa(m+1), Values: w}
	}
	if err := report.Chart(out, "Fig 1 (bottom): 3-day arriving work per organization", orgs, 72, 10); err != nil {
		return err
	}
	if csvPath != "" {
		cols := make([][]float64, 0, len(res.Prices)+len(res.OrgWork))
		headers := make([]string, 0, cap(cols))
		for i, p := range res.Prices {
			headers = append(headers, "price_dc"+strconv.Itoa(i+1))
			cols = append(cols, p)
		}
		for m, w := range res.OrgWork {
			headers = append(headers, "work_org"+strconv.Itoa(m+1))
			cols = append(cols, w)
		}
		return writeCSVFile(csvPath, headers, cols)
	}
	return nil
}

func runFig2(out io.Writer, cfg experiments.Config, csvPath string) error {
	res, err := experiments.Fig2(cfg)
	if err != nil {
		return err
	}
	mkSeries := func(series [][]float64) []report.Series {
		s := make([]report.Series, len(res.V))
		for x := range res.V {
			s[x] = report.Series{Name: "V=" + strconv.FormatFloat(res.V[x], 'g', -1, 64), Values: series[x]}
		}
		return s
	}
	if err := report.Chart(out, "Fig 2a: running-average energy cost", mkSeries(res.Energy), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 2b: running-average delay in DC1", mkSeries(res.DelayDC1), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 2c: running-average delay in DC2", mkSeries(res.DelayDC2), 72, 10); err != nil {
		return err
	}
	table := make([][]string, len(res.V))
	for x := range res.V {
		table[x] = []string{
			strconv.FormatFloat(res.V[x], 'g', -1, 64),
			report.FormatFloat(res.FinalEnergy[x], 3),
			report.FormatFloat(res.FinalDelayDC1[x], 3),
			report.FormatFloat(res.FinalDelayDC2[x], 3),
		}
	}
	if err := report.Table(out, []string{"V", "Avg Energy", "Delay DC1", "Delay DC2"}, table); err != nil {
		return err
	}
	if csvPath != "" {
		var headers []string
		var cols [][]float64
		for x := range res.V {
			v := strconv.FormatFloat(res.V[x], 'g', -1, 64)
			headers = append(headers, "energy_V"+v, "delay_dc1_V"+v, "delay_dc2_V"+v)
			cols = append(cols, res.Energy[x], res.DelayDC1[x], res.DelayDC2[x])
		}
		return writeCSVFile(csvPath, headers, cols)
	}
	return nil
}

func runFig3(out io.Writer, cfg experiments.Config, csvPath string) error {
	res, err := experiments.Fig3(cfg)
	if err != nil {
		return err
	}
	mkSeries := func(series [][]float64) []report.Series {
		s := make([]report.Series, len(res.Beta))
		for x := range res.Beta {
			s[x] = report.Series{Name: "beta=" + strconv.FormatFloat(res.Beta[x], 'g', -1, 64), Values: series[x]}
		}
		return s
	}
	if err := report.Chart(out, "Fig 3a: running-average energy cost", mkSeries(res.Energy), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 3b: running-average fairness", mkSeries(res.Fairness), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 3c: running-average delay in DC1", mkSeries(res.DelayDC1), 72, 10); err != nil {
		return err
	}
	table := make([][]string, len(res.Beta))
	for x := range res.Beta {
		table[x] = []string{
			strconv.FormatFloat(res.Beta[x], 'g', -1, 64),
			report.FormatFloat(res.FinalEnergy[x], 3),
			report.FormatFloat(res.FinalFairness[x], 4),
			report.FormatFloat(res.FinalDelayDC1[x], 3),
		}
	}
	if err := report.Table(out, []string{"beta", "Avg Energy", "Avg Fairness", "Delay DC1"}, table); err != nil {
		return err
	}
	if csvPath != "" {
		var headers []string
		var cols [][]float64
		for x := range res.Beta {
			bt := strconv.FormatFloat(res.Beta[x], 'g', -1, 64)
			headers = append(headers, "energy_b"+bt, "fairness_b"+bt, "delay_dc1_b"+bt)
			cols = append(cols, res.Energy[x], res.Fairness[x], res.DelayDC1[x])
		}
		return writeCSVFile(csvPath, headers, cols)
	}
	return nil
}

func runFig4(out io.Writer, cfg experiments.Config, csvPath string) error {
	res, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	mkSeries := func(series [][]float64) []report.Series {
		s := make([]report.Series, len(res.Names))
		for x := range res.Names {
			s[x] = report.Series{Name: res.Names[x], Values: series[x]}
		}
		return s
	}
	if err := report.Chart(out, "Fig 4a: running-average energy cost", mkSeries(res.Energy), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 4b: running-average fairness", mkSeries(res.Fairness), 72, 10); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 4c: running-average delay in DC1", mkSeries(res.DelayDC1), 72, 10); err != nil {
		return err
	}
	table := make([][]string, len(res.Names))
	for x := range res.Names {
		table[x] = []string{
			res.Names[x],
			report.FormatFloat(res.FinalEnergy[x], 3),
			report.FormatFloat(res.FinalFairness[x], 4),
			report.FormatFloat(res.FinalDelayDC1[x], 3),
			fmt.Sprintf("%.2f / %.2f / %.2f", res.WorkPerDC[x][0], res.WorkPerDC[x][1], res.WorkPerDC[x][2]),
		}
	}
	if err := report.Table(out, []string{"Policy", "Avg Energy", "Avg Fairness", "Delay DC1", "Work/slot per DC"}, table); err != nil {
		return err
	}
	if csvPath != "" {
		var headers []string
		var cols [][]float64
		for x, name := range res.Names {
			headers = append(headers, "energy_"+name, "fairness_"+name, "delay_dc1_"+name)
			cols = append(cols, res.Energy[x], res.Fairness[x], res.DelayDC1[x])
		}
		return writeCSVFile(csvPath, headers, cols)
	}
	return nil
}

func runFig5(out io.Writer, cfg experiments.Config, day int, csvPath string) error {
	res, err := experiments.Fig5(cfg, day)
	if err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 5 (top): DC1 price over the snapshot day",
		[]report.Series{{Name: "price", Values: res.PriceDC1}}, 48, 8); err != nil {
		return err
	}
	if err := report.Chart(out, "Fig 5 (bottom): scheduled work at DC1", []report.Series{
		{Name: "GreFar", Values: res.GreFarWork},
		{Name: "Always", Values: res.AlwaysWork},
	}, 48, 8); err != nil {
		return err
	}
	fmt.Fprintf(out, "mean DC1 price %.4f; price paid per unit work: GreFar %.4f, Always %.4f\n",
		res.MeanPriceDC1, res.GreFarPricePaid, res.AlwaysPricePaid)
	if csvPath != "" {
		return writeCSVFile(csvPath,
			[]string{"price_dc1", "grefar_work", "always_work"},
			[][]float64{res.PriceDC1, res.GreFarWork, res.AlwaysWork})
	}
	return nil
}

func runWorkShare(out io.Writer, cfg experiments.Config) error {
	ws, err := experiments.WorkShare(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "average work per slot scheduled per data center (V=7.5, beta=100):\n")
	fmt.Fprintf(out, "  dc1=%.3f dc2=%.3f dc3=%.3f   (paper: 33.967, 48.502, 14.770)\n", ws[0], ws[1], ws[2])
	return nil
}

func runTheorem1(out io.Writer, cfg experiments.Config) error {
	if cfg.Slots > 24*20 {
		cfg.Slots = 24 * 20 // the frame LPs dominate runtime; cap the horizon
	}
	res, err := experiments.Theorem1(cfg, nil, 12)
	if err != nil {
		return err
	}
	gaps := res.Gap()
	table := make([][]string, len(res.V))
	for x := range res.V {
		table[x] = []string{
			strconv.FormatFloat(res.V[x], 'g', -1, 64),
			report.FormatFloat(res.MaxQueue[x], 1),
			report.FormatFloat(res.AvgCost[x], 3),
			report.FormatFloat(gaps[x], 3),
			report.FormatFloat(res.FinalBacklog[x], 1),
		}
	}
	if err := report.Table(out, []string{"V", "Max Queue (O(V))", "Avg Cost", "Gap to Lookahead (O(1/V))", "Final Backlog"}, table); err != nil {
		return err
	}
	fmt.Fprintf(out, "T-step lookahead benchmark (T=%d): %.3f\n", res.T, res.LookaheadCost)
	return nil
}

func runAblation(out io.Writer, cfg experiments.Config) error {
	gl, err := experiments.AblationGreedyVsLP(experiments.Config{Seed: cfg.Seed, Slots: 200}, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "greedy vs LP slot solver: max objective diff %.2e, speedup %.1fx (greedy %v, LP %v)\n",
		gl.MaxObjectiveDiff, gl.Speedup, gl.GreedyTime, gl.LPTime)
	fw, err := experiments.AblationFWIters(experiments.Config{Seed: cfg.Seed, Slots: 500}, nil, 10)
	if err != nil {
		return err
	}
	for x, it := range fw.Iters {
		fmt.Fprintf(out, "frank-wolfe iters=%-4d relative objective gap %.2e\n", it, fw.RelGap[x])
	}
	tb, err := experiments.AblationRoutingTieBreak(experiments.Config{Seed: cfg.Seed, Slots: cfg.Slots})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "routing ties at V=0.1: split-ties energy %.3f (work %v) vs first-site %.3f (work %v)\n",
		tb.SplitEnergy, tb.SplitWork, tb.FirstEnergy, tb.FirstWork)
	return nil
}

// runEvents replays the reference simulation through the public facade with
// a JSONL slot-event observer attached to both the scheduler and the
// simulator, streaming two telemetry.SlotEvents per slot — origin "decide"
// (with solver diagnostics) and origin "sim" (with realized energy,
// fairness, and job counts) — for external analysis.
func runEvents(ctx context.Context, out io.Writer, cfg experiments.Config, v, beta float64, path string) error {
	in, err := grefar.ReferenceInputs(cfg.Seed, cfg.Slots)
	if err != nil {
		return err
	}
	w := out
	var f *os.File
	if path != "" {
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	jsonl := grefar.NewJSONLObserver(bw)
	s, err := grefar.New(in.Cluster,
		grefar.WithV(v),
		grefar.WithBeta(beta),
		grefar.WithObserver(jsonl),
	)
	if err != nil {
		return err
	}
	res, simErr := grefar.Simulate(in, s,
		grefar.WithSlots(cfg.Slots),
		grefar.WithContext(ctx),
		grefar.WithObserver(jsonl),
		grefar.WithCheck(cfg.Check),
	)
	// Flush even when the run stopped early (cancellation), so the stream
	// never ends mid-line.
	if err := jsonl.Err(); err != nil {
		return fmt.Errorf("writing events: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if simErr != nil {
		return simErr
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote slot events for %d slots to %s\n", res.Slots, path)
	}
	return nil
}

func writeCSVFile(path string, headers []string, cols [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, headers, cols); err != nil {
		return err
	}
	return f.Close()
}
