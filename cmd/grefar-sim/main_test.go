package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestRunTable1(t *testing.T) {
	out := runCLI(t, "-experiment", "table1", "-slots", "200")
	for _, want := range []string{"DC", "dc1", "dc2", "dc3", "Avg Price"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig1WithCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "fig1.csv")
	out := runCLI(t, "-experiment", "fig1", "-slots", "100", "-csv", csvPath)
	if !strings.Contains(out, "Fig 1") {
		t.Errorf("missing chart title:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "price_dc1,price_dc2,price_dc3,work_org1") {
		t.Errorf("csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunFig2(t *testing.T) {
	out := runCLI(t, "-experiment", "fig2", "-slots", "240")
	for _, want := range []string{"Fig 2a", "Fig 2b", "Fig 2c", "V=0.1", "V=20", "Avg Energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig3(t *testing.T) {
	out := runCLI(t, "-experiment", "fig3", "-slots", "240")
	for _, want := range []string{"Fig 3a", "Fig 3b", "beta=100", "Avg Fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4(t *testing.T) {
	out := runCLI(t, "-experiment", "fig4", "-slots", "240")
	for _, want := range []string{"Fig 4a", "always", "grefar", "Work/slot per DC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig5(t *testing.T) {
	out := runCLI(t, "-experiment", "fig5", "-slots", "480", "-day", "5")
	for _, want := range []string{"Fig 5", "price paid per unit work", "GreFar", "Always"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWorkshareAndTheorem(t *testing.T) {
	out := runCLI(t, "-experiment", "workshare", "-slots", "240")
	if !strings.Contains(out, "paper: 33.967") {
		t.Errorf("workshare output missing paper reference:\n%s", out)
	}
	out = runCLI(t, "-experiment", "theorem1", "-slots", "120")
	if !strings.Contains(out, "Max Queue") || !strings.Contains(out, "lookahead benchmark") {
		t.Errorf("theorem1 output wrong:\n%s", out)
	}
}

func TestRunAblation(t *testing.T) {
	out := runCLI(t, "-experiment", "ablation", "-slots", "120")
	if !strings.Contains(out, "greedy vs LP") || !strings.Contains(out, "frank-wolfe iters") {
		t.Errorf("ablation output wrong:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-experiment", "nope"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRobustness(t *testing.T) {
	out := runCLI(t, "-experiment", "robustness", "-slots", "120")
	if !strings.Contains(out, "energy gap") || !strings.Contains(out, "ordering violations") {
		t.Errorf("robustness output wrong:\n%s", out)
	}
}

func TestRunChurn(t *testing.T) {
	out := runCLI(t, "-experiment", "churn", "-slots", "72", "-chaos-seed", "2012")
	for _, want := range []string{"churn over 72 slots", "degraded slots", "agent 1 down", "agent 2 down", "rejoined", "backlog inflation"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
	// Same seeds, same printout: the CLI path must be reproducible too.
	if again := runCLI(t, "-experiment", "churn", "-slots", "72", "-chaos-seed", "2012"); again != out {
		t.Errorf("churn rerun diverged:\n%s\nvs:\n%s", again, out)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-experiment", "churn", "-slots", "10", "-down", "20"}, &sb); err == nil {
		t.Error("outage longer than the horizon accepted")
	}
}

func TestRunAllClampsSnapshotDay(t *testing.T) {
	// A short horizon must not break the all-experiments sweep on the
	// default fig5 day; this exercises the clamp, not the full sweep.
	out := runCLI(t, "-experiment", "fig5", "-slots", "480", "-day", "10")
	if !strings.Contains(out, "Fig 5") {
		t.Errorf("fig5 output wrong:\n%s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-experiment", "fig5", "-slots", "480", "-day", "30"}, &sb); err == nil {
		t.Error("explicit out-of-range day accepted for a single experiment")
	}
}

func TestRunEventsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	out := runCLI(t, "-experiment", "events", "-slots", "24", "-events", path)
	if !strings.Contains(out, "wrote slot events for 24 slots") {
		t.Errorf("missing summary line:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Two events per slot: one from the scheduler, one from the simulator.
	if len(lines) != 48 {
		t.Fatalf("got %d JSONL lines, want 48", len(lines))
	}
	var ev struct {
		Slot   int     `json:"slot"`
		Origin string  `json:"origin"`
		Energy float64 `json:"energy"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("first line is not JSON: %v", err)
	}
	if ev.Origin != "decide" || ev.Slot != 0 {
		t.Errorf("first event = %+v, want slot 0 origin decide", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Origin != "sim" {
		t.Errorf("second event origin = %q, want sim", ev.Origin)
	}
}

func TestRunEventsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-experiment", "events", "-slots", "24"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("got %v, want cancellation error", err)
	}
}
