package main

import (
	"strings"
	"testing"

	"grefar/internal/price"
	"grefar/internal/workload"
)

func checkPrices(t *testing.T, csv string) {
	t.Helper()
	names, traces, err := price.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("price.ReadCSV on tracegen output: %v", err)
	}
	if len(names) != 3 || len(traces) != 3 {
		t.Errorf("got %d locations, want 3", len(names))
	}
	for i, tr := range traces {
		if len(tr.Values) != 24 {
			t.Errorf("location %d has %d slots, want 24", i, len(tr.Values))
		}
	}
}

func checkWorkload(t *testing.T, csv string) {
	t.Helper()
	names, tr, err := workload.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("workload.ReadCSV on tracegen output: %v", err)
	}
	if len(names) != 8 {
		t.Errorf("got %d job types, want 8", len(names))
	}
	if tr.Len() != 24 {
		t.Errorf("trace has %d slots, want 24", tr.Len())
	}
}
