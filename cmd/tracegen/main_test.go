package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTracegenPrices(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "prices", "-slots", "48"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "price_dc1,price_dc2,price_dc3" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 49 {
		t.Errorf("got %d lines, want 49", len(lines))
	}
}

func TestTracegenWorkloadToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.csv")
	var sb strings.Builder
	if err := run([]string{"-kind", "workload", "-slots", "24", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "arrivals_org1-short") {
		t.Errorf("csv missing job type column: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestTracegenAvailability(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "availability", "-slots", "24"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "avail_dc1_") {
		t.Errorf("header wrong: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestTracegenUnknownKind(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-kind", "nope"}, &sb); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTracegenRoundTripsThroughReaders(t *testing.T) {
	// The generated CSVs must parse with the corresponding readers.
	var prices strings.Builder
	if err := run([]string{"-kind", "prices", "-slots", "24"}, &prices); err != nil {
		t.Fatal(err)
	}
	var wl strings.Builder
	if err := run([]string{"-kind", "workload", "-slots", "24"}, &wl); err != nil {
		t.Fatal(err)
	}
	checkPrices(t, prices.String())
	checkWorkload(t, wl.String())
}
