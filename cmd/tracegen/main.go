// Command tracegen materializes the synthetic input traces (electricity
// prices, job arrivals, server availability) as CSV files for inspection or
// external tooling.
//
// Usage:
//
//	tracegen -kind prices|workload|availability [-slots 2000] [-seed 2012] [-out trace.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/report"
	"grefar/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("kind", "prices", "which trace to generate: prices, workload, or availability")
	slots := fs.Int("slots", 2000, "trace length in hourly slots")
	seed := fs.Int64("seed", 2012, "generator seed")
	outPath := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	c := model.NewReferenceCluster()
	switch *kind {
	case "prices":
		traces, err := price.NewReferenceSources(*seed, *slots)
		if err != nil {
			return err
		}
		headers := make([]string, len(traces))
		cols := make([][]float64, len(traces))
		for i, tr := range traces {
			headers[i] = "price_dc" + strconv.Itoa(i+1)
			cols[i] = tr.Values
		}
		return report.WriteCSV(out, headers, cols)
	case "workload":
		tr, err := workload.NewReferenceWorkload(*seed, c, *slots)
		if err != nil {
			return err
		}
		headers := make([]string, c.J())
		cols := make([][]float64, c.J())
		for j := 0; j < c.J(); j++ {
			headers[j] = "arrivals_" + c.JobTypes[j].Name
			cols[j] = make([]float64, tr.Len())
		}
		for t := 0; t < tr.Len(); t++ {
			for j, a := range tr.Arrivals(t) {
				cols[j][t] = float64(a)
			}
		}
		return report.WriteCSV(out, headers, cols)
	case "availability":
		tr, err := availability.NewReferenceAvailability(*seed, c, *slots)
		if err != nil {
			return err
		}
		var headers []string
		var cols [][]float64
		for i := 0; i < c.N(); i++ {
			for k := 0; k < c.K(i); k++ {
				headers = append(headers, fmt.Sprintf("avail_%s_%s", c.DataCenters[i].Name, c.DataCenters[i].Servers[k].Name))
				col := make([]float64, tr.Len())
				for t := 0; t < tr.Len(); t++ {
					col[t] = tr.At(t)[i][k]
				}
				cols = append(cols, col)
			}
		}
		return report.WriteCSV(out, headers, cols)
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
}
