// Command benchjson converts `go test -bench` output into a stable JSON
// baseline and guards later runs against it.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSlotDecision$|BenchmarkDistributedSlot$' \
//	        -benchmem -count=3 . | benchjson -out BENCH_slot.json
//	go test ... | benchjson -compare BENCH_slot.json -max-regress 0.15
//
// Benchmark names are recorded with the -GOMAXPROCS suffix stripped so the
// baseline is portable across machines with different core counts. With
// -count > 1 the fastest repetition per benchmark is kept: ns/op noise is
// one-sided (scheduling and thermal jitter only ever slow a run down), so
// the minimum is the most reproducible summary.
//
// In -compare mode the exit status is nonzero when any benchmark matching
// -guard (default: the beta=100 and large-instance slot-decision cases, the
// solver hot paths) regresses more than -max-regress in ns/op or allocs/op
// against the recorded baseline. Other shared benchmarks are reported but do
// not fail the run, and benchmarks present on only one side are ignored.
//
// -filter restricts the parsed results to names matching a regexp before
// anything else happens — useful for recording or guarding one benchmark
// family out of a wider run. An input with no matching results is an error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// gomaxprocsSuffix matches the trailing -N that `go test` appends to
// benchmark names (GOMAXPROCS at run time).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output and returns the fastest
// repetition per benchmark, keyed by name without the GOMAXPROCS suffix.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var res Result
		ok := false
		// Benchmark lines are "name iters value unit value unit ...".
		for f := 2; f+1 < len(fields); f += 2 {
			v, err := strconv.ParseFloat(fields[f], 64)
			if err != nil {
				continue
			}
			switch fields[f+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on input")
	}
	return out, nil
}

// regression describes one guarded metric exceeding the allowed slack.
type regression struct {
	name   string
	metric string
	old    float64
	new    float64
}

// compare checks current results against the baseline and returns the
// guarded regressions beyond maxRegress (a fraction, e.g. 0.15 for 15%).
// Metrics with a zero baseline are skipped: a ratio against zero is
// meaningless, and allocs/op legitimately sits at zero for some paths.
func compare(w io.Writer, baseline, current map[string]Result, guard *regexp.Regexp, maxRegress float64) []regression {
	var bad []regression
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sortStrings(names)
	for _, name := range names {
		old, cur := baseline[name], current[name]
		guarded := guard.MatchString(name)
		for _, m := range []struct {
			metric   string
			old, new float64
		}{
			{"ns/op", old.NsPerOp, cur.NsPerOp},
			{"allocs/op", old.AllocsPerOp, cur.AllocsPerOp},
		} {
			if m.old == 0 {
				continue
			}
			frac := (m.new - m.old) / m.old
			status := "ok"
			if frac > maxRegress {
				if guarded {
					status = "FAIL"
					bad = append(bad, regression{name, m.metric, m.old, m.new})
				} else {
					status = "warn"
				}
			}
			fmt.Fprintf(w, "%-4s %-50s %-10s %12.1f -> %12.1f  (%+.1f%%)\n",
				status, name, m.metric, m.old, m.new, 100*frac)
		}
	}
	return bad
}

// sortStrings is an insertion sort; the name lists here are tiny and this
// keeps the command free of incidental imports.
func sortStrings(s []string) {
	for a := 1; a < len(s); a++ {
		for b := a; b > 0 && s[b] < s[b-1]; b-- {
			s[b], s[b-1] = s[b-1], s[b]
		}
	}
}

func run(in io.Reader, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "write parsed results as JSON to this file")
	comparePath := fs.String("compare", "", "baseline JSON to compare against; exit nonzero on guarded regression")
	maxRegress := fs.Float64("max-regress", 0.15, "allowed fractional regression for guarded benchmarks")
	guardExpr := fs.String("guard", `^BenchmarkSlotDecision/(beta=100|N=)`, "regexp of benchmark names that fail the run on regression")
	filterExpr := fs.String("filter", "", "regexp restricting which parsed benchmarks are recorded or compared (empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" && *comparePath == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -compare")
	}
	guard, err := regexp.Compile(*guardExpr)
	if err != nil {
		return fmt.Errorf("bad -guard: %v", err)
	}
	current, err := parseBench(in)
	if err != nil {
		return err
	}
	if *filterExpr != "" {
		filter, err := regexp.Compile(*filterExpr)
		if err != nil {
			return fmt.Errorf("bad -filter: %v", err)
		}
		for name := range current {
			if !filter.MatchString(name) {
				delete(current, name)
			}
		}
		if len(current) == 0 {
			return fmt.Errorf("-filter %q matched no benchmark results", *filterExpr)
		}
	}
	if *outPath != "" {
		// json.Marshal emits map keys in sorted order, so the committed
		// baseline diffs cleanly.
		buf, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmark results to %s\n", len(current), *outPath)
	}
	if *comparePath != "" {
		buf, err := os.ReadFile(*comparePath)
		if err != nil {
			return err
		}
		baseline := make(map[string]Result)
		if err := json.Unmarshal(buf, &baseline); err != nil {
			return fmt.Errorf("%s: %v", *comparePath, err)
		}
		if bad := compare(out, baseline, current, guard, *maxRegress); len(bad) > 0 {
			for _, r := range bad {
				fmt.Fprintf(out, "regression: %s %s %.1f -> %.1f exceeds %.0f%% budget\n",
					r.name, r.metric, r.old, r.new, 100**maxRegress)
			}
			return fmt.Errorf("%d guarded benchmark metric(s) regressed beyond %.0f%%", len(bad), 100**maxRegress)
		}
		fmt.Fprintf(out, "no guarded regressions against %s\n", *comparePath)
	}
	return nil
}

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
