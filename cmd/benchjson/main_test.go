package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: grefar
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSlotDecision/beta=0-16         	  949004	      1150 ns/op	     728 B/op	       7 allocs/op
BenchmarkSlotDecision/beta=100-16       	  353619	      3396 ns/op	     896 B/op	       9 allocs/op
BenchmarkSlotDecision/beta=100-16       	  347372	      3425 ns/op	     896 B/op	       9 allocs/op
BenchmarkSlotDecision/beta=100-warm-16  	  529323	      2219 ns/op	     896 B/op	       9 allocs/op
BenchmarkDistributedSlot-16             	    8204	    146000 ns/op	   52000 B/op	     310 allocs/op
PASS
ok  	grefar	20.592s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	// GOMAXPROCS suffix must be stripped.
	cold, ok := got["BenchmarkSlotDecision/beta=100"]
	if !ok {
		t.Fatalf("beta=100 missing (suffix not stripped?): %v", got)
	}
	// Two repetitions: the faster one wins.
	if cold.NsPerOp != 3396 {
		t.Errorf("beta=100 ns/op = %v, want fastest repetition 3396", cold.NsPerOp)
	}
	if cold.BytesPerOp != 896 || cold.AllocsPerOp != 9 {
		t.Errorf("beta=100 mem = %v B/op %v allocs/op, want 896/9", cold.BytesPerOp, cold.AllocsPerOp)
	}
	if _, ok := got["BenchmarkDistributedSlot"]; !ok {
		t.Errorf("top-level benchmark missing: %v", got)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok grefar 1s\n")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func TestCompareGuard(t *testing.T) {
	guard := regexp.MustCompile(`^BenchmarkSlotDecision/beta=100`)
	baseline := map[string]Result{
		"BenchmarkSlotDecision/beta=100":      {NsPerOp: 3000, AllocsPerOp: 9},
		"BenchmarkSlotDecision/beta=100-warm": {NsPerOp: 2000, AllocsPerOp: 9},
		"BenchmarkDistributedSlot":            {NsPerOp: 100000, AllocsPerOp: 300},
		"BenchmarkOnlyInBaseline":             {NsPerOp: 1},
	}

	t.Run("within budget", func(t *testing.T) {
		current := map[string]Result{
			"BenchmarkSlotDecision/beta=100":      {NsPerOp: 3300, AllocsPerOp: 9},
			"BenchmarkSlotDecision/beta=100-warm": {NsPerOp: 1900, AllocsPerOp: 9},
			"BenchmarkDistributedSlot":            {NsPerOp: 500000, AllocsPerOp: 300}, // unguarded: warn only
		}
		var sb strings.Builder
		if bad := compare(&sb, baseline, current, guard, 0.15); len(bad) != 0 {
			t.Fatalf("unexpected regressions: %v\n%s", bad, sb.String())
		}
		if !strings.Contains(sb.String(), "warn") {
			t.Errorf("unguarded 5x regression should warn:\n%s", sb.String())
		}
	})

	t.Run("ns regression fails", func(t *testing.T) {
		current := map[string]Result{
			"BenchmarkSlotDecision/beta=100": {NsPerOp: 3600, AllocsPerOp: 9},
		}
		var sb strings.Builder
		bad := compare(&sb, baseline, current, guard, 0.15)
		if len(bad) != 1 || bad[0].metric != "ns/op" {
			t.Fatalf("want exactly one ns/op regression, got %v", bad)
		}
	})

	t.Run("alloc regression fails", func(t *testing.T) {
		current := map[string]Result{
			"BenchmarkSlotDecision/beta=100-warm": {NsPerOp: 2000, AllocsPerOp: 12},
		}
		var sb strings.Builder
		bad := compare(&sb, baseline, current, guard, 0.15)
		if len(bad) != 1 || bad[0].metric != "allocs/op" {
			t.Fatalf("want exactly one allocs/op regression, got %v", bad)
		}
	})
}

func TestRunOutAndCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_slot.json")

	var out strings.Builder
	if err := run(strings.NewReader(sampleBench), &out, []string{"-out", path}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("written baseline is not valid JSON: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("baseline has %d entries, want 4", len(decoded))
	}

	// The same run compared against its own baseline must pass.
	out.Reset()
	if err := run(strings.NewReader(sampleBench), &out, []string{"-compare", path}); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}

	// A slowed-down run must fail the guard.
	slow := strings.ReplaceAll(sampleBench, "3396 ns/op", "9396 ns/op")
	slow = strings.ReplaceAll(slow, "3425 ns/op", "9425 ns/op")
	out.Reset()
	if err := run(strings.NewReader(slow), &out, []string{"-compare", path}); err == nil {
		t.Fatalf("3x slower guarded benchmark passed compare:\n%s", out.String())
	}
}

func TestRunNeedsAction(t *testing.T) {
	if err := run(strings.NewReader(sampleBench), &strings.Builder{}, nil); err == nil {
		t.Fatal("want error when neither -out nor -compare is given")
	}
}

func TestRunFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_filtered.json")

	var out strings.Builder
	if err := run(strings.NewReader(sampleBench), &out,
		[]string{"-out", path, "-filter", `^BenchmarkSlotDecision/`}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 3 {
		t.Fatalf("filtered baseline has %d entries, want 3: %v", len(decoded), decoded)
	}
	if _, ok := decoded["BenchmarkDistributedSlot"]; ok {
		t.Error("filtered-out benchmark recorded anyway")
	}

	// A filtered compare ignores regressions outside the filter.
	slow := strings.ReplaceAll(sampleBench, "146000 ns/op", "946000 ns/op")
	out.Reset()
	if err := run(strings.NewReader(slow), &out,
		[]string{"-compare", path, "-filter", `^BenchmarkSlotDecision/`}); err != nil {
		t.Fatalf("filtered self-compare failed: %v\n%s", err, out.String())
	}

	// Filters that match nothing or fail to compile are errors.
	if err := run(strings.NewReader(sampleBench), &strings.Builder{},
		[]string{"-out", path, "-filter", "^BenchmarkNoSuch"}); err == nil {
		t.Fatal("empty filter result accepted")
	}
	if err := run(strings.NewReader(sampleBench), &strings.Builder{},
		[]string{"-out", path, "-filter", "("}); err == nil {
		t.Fatal("invalid filter regexp accepted")
	}
}
