// Command grefar-controller runs the central scheduler of the distributed
// GreFar deployment: it connects to one agent per data center, drives the
// per-slot control loop for the requested horizon, and prints the run's
// metrics.
//
// Usage:
//
//	grefar-controller -agents 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	                  [-V 7.5] [-beta 100] [-slots 2000] [-seed 2012] [-policy grefar|always]
//
// The seed must match the agents' so the controller's workload lines up with
// the world the agents simulate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grefar/internal/controller"
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/sched"
	"grefar/internal/transport"
	"grefar/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-controller:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grefar-controller", flag.ContinueOnError)
	agents := fs.String("agents", "", "comma-separated agent addresses, one per data center, in site order")
	v := fs.Float64("V", 7.5, "cost-delay parameter")
	beta := fs.Float64("beta", 100, "energy-fairness parameter")
	slots := fs.Int("slots", 2000, "horizon in hourly slots")
	seed := fs.Int64("seed", 2012, "workload seed (must match the agents)")
	policy := fs.String("policy", "grefar", "scheduling policy: grefar or always")
	timeout := fs.Duration("timeout", 10*time.Second, "per-RPC timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c := model.NewReferenceCluster()
	addrs := strings.Split(*agents, ",")
	if *agents == "" || len(addrs) != c.N() {
		return fmt.Errorf("need exactly %d agent addresses via -agents, got %q", c.N(), *agents)
	}
	conns := make([]controller.AgentConn, len(addrs))
	for i, addr := range addrs {
		cli, err := transport.Dial(strings.TrimSpace(addr), *timeout)
		if err != nil {
			return fmt.Errorf("agent %d: %w", i, err)
		}
		defer cli.Close()
		var pong transport.Ping
		if err := cli.Call(transport.KindPing, transport.Ping{Nonce: uint64(i)}, &pong); err != nil {
			return fmt.Errorf("agent %d ping: %w", i, err)
		}
		conns[i] = cli
	}

	var s sched.Scheduler
	var err error
	switch *policy {
	case "grefar":
		s, err = core.New(c, core.Config{V: *v, Beta: *beta})
	case "always":
		s, err = sched.NewAlways(c)
	default:
		err = fmt.Errorf("unknown policy %q", *policy)
	}
	if err != nil {
		return err
	}

	wl, err := workload.NewReferenceWorkload(*seed+1, c, *slots)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	ct, err := controller.New(c, s, conns)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := ct.Run(*slots, wl)
	if err != nil {
		return err
	}
	fmt.Printf("policy %s over %d slots in %v\n", res.SchedulerName, res.Slots, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  avg energy cost      %.3f\n", res.AvgEnergy)
	fmt.Printf("  avg fairness score   %.4f\n", res.AvgFairness)
	for i, d := range res.AvgLocalDelay {
		fmt.Printf("  avg delay %-10s %.3f slots (%.2f work/slot)\n", c.DataCenters[i].Name, d, res.AvgWorkPerDC[i])
	}
	fmt.Printf("  jobs arrived/processed %.0f / %.0f\n", res.TotalArrived, res.TotalProcessed)
	return nil
}
