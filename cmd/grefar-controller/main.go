// Command grefar-controller runs the central scheduler of the distributed
// GreFar deployment: it connects to one agent per data center, drives the
// per-slot control loop for the requested horizon, and prints the run's
// metrics. With -metrics-addr it also serves Prometheus-format telemetry
// (/metrics), a liveness probe (/healthz), and, behind -pprof, the standard
// profiling endpoints.
//
// Usage:
//
//	grefar-controller -agents 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	                  [-V 7.5] [-beta 100] [-slots 2000] [-seed 2012] \
//	                  [-policy grefar|always] [-partitions 1] \
//	                  [-metrics-addr 127.0.0.1:9090] [-pprof]
//
// With -partitions > 1 the control loop runs as that many concurrent
// controller partitions over disjoint data-center ranges, committing
// optimistically against a shared queue board; per-partition commit and
// conflict counters are served on /metrics.
//
// The seed must match the agents' so the controller's workload lines up with
// the world the agents simulate. Agent connections redial with capped
// exponential backoff on transport failures (-retries bounds the attempts).
// SIGINT or SIGTERM stops the control loop at the next slot boundary, and
// also aborts any in-flight reconnection backoff immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grefar/internal/controller"
	"grefar/internal/controlplane"
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-controller:", err)
		os.Exit(1)
	}
}

// loopRunner is the control loop the app drives: the single controller and
// the partitioned plane expose the same run surface.
type loopRunner interface {
	RunContext(ctx context.Context, slots int, wl workload.Generator) (*sim.Result, error)
}

// app is a fully wired controller run: the control loop plus its
// observability mux. Tests build one with buildApp and mount Metrics on an
// httptest server instead of a real listener.
type app struct {
	cluster *model.Cluster
	ctrl    loopRunner
	// Metrics serves /metrics, /healthz, and optionally /debug/pprof/.
	Metrics http.Handler

	slots       int
	wl          workload.Generator
	metricsAddr string
	conns       []*transport.ReconnectClient
}

// Close releases the agent connections.
func (a *app) Close() {
	for _, cli := range a.conns {
		cli.Close()
	}
}

// runLoop drives the control loop until the horizon or ctx cancellation and
// prints the run report.
func (a *app) runLoop(ctx context.Context, out io.Writer) error {
	start := time.Now()
	res, err := a.ctrl.RunContext(ctx, a.slots, a.wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "policy %s over %d slots in %v\n", res.SchedulerName, res.Slots, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "  avg energy cost      %.3f\n", res.AvgEnergy)
	fmt.Fprintf(out, "  avg fairness score   %.4f\n", res.AvgFairness)
	for i, d := range res.AvgLocalDelay {
		fmt.Fprintf(out, "  avg delay %-10s %.3f slots (%.2f work/slot)\n", a.cluster.DataCenters[i].Name, d, res.AvgWorkPerDC[i])
	}
	fmt.Fprintf(out, "  jobs arrived/processed %.0f / %.0f\n", res.TotalArrived, res.TotalProcessed)
	return nil
}

// buildApp parses flags, dials the agents, and wires the scheduler, the
// controller, and the telemetry registry together.
func buildApp(args []string) (*app, error) {
	fs := flag.NewFlagSet("grefar-controller", flag.ContinueOnError)
	agents := fs.String("agents", "", "comma-separated agent addresses, one per data center, in site order")
	v := fs.Float64("V", 7.5, "cost-delay parameter")
	beta := fs.Float64("beta", 100, "energy-fairness parameter")
	slots := fs.Int("slots", 2000, "horizon in hourly slots")
	seed := fs.Int64("seed", 2012, "workload seed (must match the agents)")
	policy := fs.String("policy", "grefar", "scheduling policy: grefar or always")
	partitions := fs.Int("partitions", 1, "controller partitions (>1 runs the partitioned shared-state control plane)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-RPC timeout")
	retries := fs.Int("retries", 2, "redial attempts per RPC after a transport failure (with capped exponential backoff)")
	metricsAddr := fs.String("metrics-addr", "", "address to serve /metrics and /healthz on (empty disables)")
	pprofOn := fs.Bool("pprof", false, "also mount /debug/pprof/ on the metrics address")
	failurePolicy := fs.String("failure-policy", "degrade", "reaction to agent failures: degrade (mask the site and keep scheduling) or strict (abort the run)")
	suspectAfter := fs.Int("suspect-after", 1, "consecutive failed interactions before an agent is masked (degrade policy)")
	deadAfter := fs.Int("dead-after", 3, "consecutive failed interactions before an agent leaves the gather set and is heartbeat-probed instead")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	policyVal, err := controller.ParseFailurePolicy(*failurePolicy)
	if err != nil {
		return nil, err
	}

	c := model.NewReferenceCluster()
	addrs := strings.Split(*agents, ",")
	if *agents == "" || len(addrs) != c.N() {
		return nil, fmt.Errorf("need exactly %d agent addresses via -agents, got %q", c.N(), *agents)
	}

	reg := telemetry.NewRegistry()
	obs := telemetry.NewRegistryObserver(reg)
	names := make([]string, c.N())
	for i, dc := range c.DataCenters {
		names[i] = dc.Name
	}
	obs.SetDCNames(names)

	a := &app{
		cluster:     c,
		slots:       *slots,
		metricsAddr: *metricsAddr,
		Metrics:     telemetry.NewMux(reg, telemetry.MuxOptions{EnablePprof: *pprofOn}),
	}
	ok := false
	defer func() {
		if !ok {
			a.Close()
		}
	}()

	conns := make([]controller.AgentConn, len(addrs))
	for i, addr := range addrs {
		// ReconnectClient dials lazily and retries with capped exponential
		// backoff; the run context threads through the controller so SIGINT
		// aborts a retry loop mid-backoff instead of waiting it out.
		cli := transport.NewReconnectClient(strings.TrimSpace(addr), *timeout, *retries)
		a.conns = append(a.conns, cli)
		var pong transport.Ping
		if err := cli.Call(transport.KindPing, transport.Ping{Nonce: uint64(i)}, &pong); err != nil {
			return nil, fmt.Errorf("agent %d ping: %w", i, err)
		}
		conns[i] = cli
	}

	// factory builds one scheduler per consumer. Only the first instance gets
	// the decision observer, so a partitioned run emits one scheduler event
	// stream per slot instead of one per partition.
	built := 0
	factory := func() (sched.Scheduler, error) {
		built++
		switch *policy {
		case "grefar":
			cfg := core.Config{V: *v, Beta: *beta}
			if built == 1 {
				cfg.Observer = obs
			}
			return core.New(c, cfg)
		case "always":
			return sched.NewAlways(c)
		default:
			return nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}

	a.wl, err = workload.NewReferenceWorkload(*seed+1, c, *slots)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if *partitions > 1 {
		a.ctrl, err = controlplane.New(c, conns, controlplane.Config{
			Partitions:   *partitions,
			NewScheduler: factory,
			Policy:       policyVal,
			SuspectAfter: *suspectAfter,
			DeadAfter:    *deadAfter,
			Observer:     obs,
			Registry:     reg,
		})
	} else {
		var s sched.Scheduler
		s, err = factory()
		if err != nil {
			return nil, err
		}
		a.ctrl, err = controller.New(c, s, conns,
			controller.WithObserver(obs),
			controller.WithFailurePolicy(policyVal),
			controller.WithHealthThresholds(*suspectAfter, *deadAfter),
			controller.WithHealthMetrics(reg),
		)
	}
	if err != nil {
		return nil, err
	}
	ok = true
	return a, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	a, err := buildApp(args)
	if err != nil {
		return err
	}
	defer a.Close()

	if a.metricsAddr != "" {
		lis, err := net.Listen("tcp", a.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: a.Metrics}
		go func() { _ = srv.Serve(lis) }()
		defer srv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", lis.Addr())
	}

	return a.runLoop(ctx, out)
}
