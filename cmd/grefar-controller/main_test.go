package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"grefar/internal/agent"
	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
)

// startAgents spins up the three reference agents exactly as the
// grefar-agent binary would, returning their addresses.
func startAgents(t *testing.T, seed int64, slots int) string {
	t.Helper()
	c := model.NewReferenceCluster()
	prices, err := price.NewReferenceSources(seed, slots)
	if err != nil {
		t.Fatal(err)
	}
	avail, err := availability.NewReferenceAvailability(seed+2, c, slots)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, c.N())
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        prices[i],
			Availability: avail,
		})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := a.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return strings.Join(addrs, ",")
}

func TestControllerMainEndToEnd(t *testing.T) {
	agents := startAgents(t, 2012, 256)
	err := run(context.Background(), []string{
		"-agents", agents,
		"-slots", "96",
		"-V", "7.5",
		"-beta", "0",
		"-seed", "2012",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestControllerMainAlwaysPolicy(t *testing.T) {
	agents := startAgents(t, 7, 128)
	if err := run(context.Background(), []string{"-agents", agents, "-slots", "48", "-policy", "always", "-seed", "7", "-failure-policy", "strict"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestControllerMainValidation(t *testing.T) {
	bg := context.Background()
	if err := run(bg, []string{"-agents", ""}, io.Discard); err == nil {
		t.Error("missing agents accepted")
	}
	if err := run(bg, []string{"-agents", "a,b"}, io.Discard); err == nil {
		t.Error("wrong agent count accepted")
	}
	if err := run(bg, []string{"-agents", "127.0.0.1:1,127.0.0.1:1,127.0.0.1:1", "-timeout", "200ms"}, io.Discard); err == nil {
		t.Error("unreachable agents accepted")
	}
	agents := startAgents(t, 7, 64)
	if err := run(bg, []string{"-agents", agents, "-policy", "nope"}, io.Discard); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(bg, []string{"-agents", agents, "-failure-policy", "nope"}, io.Discard); err == nil {
		t.Error("unknown failure policy accepted")
	}
	if err := run(bg, []string{"-not-a-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestControllerMainCanceledContext(t *testing.T) {
	agents := startAgents(t, 7, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-agents", agents, "-slots", "32", "-seed", "7"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("got %v, want cancellation error", err)
	}
}

// TestControllerMetricsEndpoint runs a short distributed loop and scrapes the
// controller's mux exactly as Prometheus would, asserting the grefar_ series
// the ISSUE promises: queue backlog, per-DC energy, and solver iterations.
func TestControllerMetricsEndpoint(t *testing.T) {
	agents := startAgents(t, 2012, 64)
	a, err := buildApp([]string{
		"-agents", agents,
		"-slots", "3",
		"-V", "7.5",
		"-beta", "100",
		"-seed", "2012",
		"-pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.runLoop(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(a.Metrics)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`grefar_slots_total{origin="controller"} 3`,
		`grefar_slots_total{origin="decide"} 3`,
		`grefar_queue_backlog{`,
		`grefar_dc_energy_cost_total{dc="dc1"}`,
		`grefar_dc_energy_cost_total{dc="dc3"}`,
		`grefar_solver_iterations_count{solver="frank-wolfe"} 3`,
		`grefar_drift`,
		`grefar_penalty`,
		`grefar_controller_agent_health{dc="0"} 0`,
		`grefar_controller_degraded_slots_total 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d with -pprof, want 200", code)
	}
}
