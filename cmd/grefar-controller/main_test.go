package main

import (
	"net"
	"strings"
	"testing"

	"grefar/internal/agent"
	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
)

// startAgents spins up the three reference agents exactly as the
// grefar-agent binary would, returning their addresses.
func startAgents(t *testing.T, seed int64, slots int) string {
	t.Helper()
	c := model.NewReferenceCluster()
	prices, err := price.NewReferenceSources(seed, slots)
	if err != nil {
		t.Fatal(err)
	}
	avail, err := availability.NewReferenceAvailability(seed+2, c, slots)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, c.N())
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        prices[i],
			Availability: avail,
		})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := a.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return strings.Join(addrs, ",")
}

func TestControllerMainEndToEnd(t *testing.T) {
	agents := startAgents(t, 2012, 256)
	err := run([]string{
		"-agents", agents,
		"-slots", "96",
		"-V", "7.5",
		"-beta", "0",
		"-seed", "2012",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestControllerMainAlwaysPolicy(t *testing.T) {
	agents := startAgents(t, 7, 128)
	if err := run([]string{"-agents", agents, "-slots", "48", "-policy", "always", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerMainValidation(t *testing.T) {
	if err := run([]string{"-agents", ""}); err == nil {
		t.Error("missing agents accepted")
	}
	if err := run([]string{"-agents", "a,b"}); err == nil {
		t.Error("wrong agent count accepted")
	}
	if err := run([]string{"-agents", "127.0.0.1:1,127.0.0.1:1,127.0.0.1:1", "-timeout", "200ms"}); err == nil {
		t.Error("unreachable agents accepted")
	}
	agents := startAgents(t, 7, 64)
	if err := run([]string{"-agents", agents, "-policy", "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
