// Command grefar-agent runs one data-center agent of the distributed GreFar
// deployment: it serves the site's state (availability, electricity price,
// local queues) to the controller and executes the allocations it receives.
//
// Usage:
//
//	grefar-agent -dc 0 -listen 127.0.0.1:7001 [-seed 2012] [-slots 4096]
//
// The agent simulates its local environment (prices and availability) from
// the reference processes; -dc selects which site of the reference cluster
// it embodies, and the seed must match the controller's so every node sees
// the same world.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"grefar/internal/agent"
	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-agent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, name, err := serve(args)
	if err != nil {
		return err
	}
	fmt.Printf("grefar-agent: serving data center %s on %s\n", name, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("grefar-agent: shutting down")
	return srv.Close()
}

// serve parses flags, builds the agent, and starts its server; main blocks
// on signals afterwards, and tests drive the returned server directly.
func serve(args []string) (*transport.Server, string, error) {
	fs := flag.NewFlagSet("grefar-agent", flag.ContinueOnError)
	dc := fs.Int("dc", 0, "data center index this agent serves")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	seed := fs.Int64("seed", 2012, "environment seed (must match the controller)")
	slots := fs.Int("slots", 4096, "length of the materialized local environment")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	c := model.NewReferenceCluster()
	prices, err := price.NewReferenceSources(*seed, *slots)
	if err != nil {
		return nil, "", fmt.Errorf("prices: %w", err)
	}
	if *dc < 0 || *dc >= len(prices) {
		return nil, "", fmt.Errorf("data center %d out of range [0,%d)", *dc, len(prices))
	}
	avail, err := availability.NewReferenceAvailability(*seed+2, c, *slots)
	if err != nil {
		return nil, "", fmt.Errorf("availability: %w", err)
	}
	a, err := agent.New(agent.Config{
		Cluster:      c,
		DataCenter:   *dc,
		Price:        prices[*dc],
		Availability: avail,
	})
	if err != nil {
		return nil, "", err
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return nil, "", err
	}
	return a.Serve(lis), c.DataCenters[*dc].Name, nil
}
