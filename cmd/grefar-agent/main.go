// Command grefar-agent runs one data-center agent of the distributed GreFar
// deployment: it serves the site's state (availability, electricity price,
// local queues) to the controller and executes the allocations it receives.
// With -metrics-addr it also exposes Prometheus-format telemetry (/metrics),
// a liveness probe (/healthz), and, behind -pprof, the standard profiling
// endpoints.
//
// Usage:
//
//	grefar-agent -dc 0 -listen 127.0.0.1:7001 [-seed 2012] [-slots 4096] \
//	             [-metrics-addr 127.0.0.1:9091] [-pprof]
//
// The agent simulates its local environment (prices and availability) from
// the reference processes; -dc selects which site of the reference cluster
// it embodies, and the seed must match the controller's so every node sees
// the same world. SIGINT or SIGTERM shuts the agent down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"grefar/internal/agent"
	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grefar-agent:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	a, err := serve(args)
	if err != nil {
		return err
	}
	defer a.Close()
	fmt.Printf("grefar-agent: serving data center %s on %s\n", a.Name, a.Server.Addr())

	if a.metricsAddr != "" {
		lis, err := net.Listen("tcp", a.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: a.Metrics}
		go func() { _ = srv.Serve(lis) }()
		defer srv.Close()
		fmt.Printf("grefar-agent: metrics on http://%s/metrics\n", lis.Addr())
	}

	<-ctx.Done()
	fmt.Println("grefar-agent: shutting down")
	return nil
}

// agentApp is a started agent: the RPC server executing allocations plus the
// observability mux fed by its per-slot events. Tests mount Metrics on an
// httptest server instead of a real listener.
type agentApp struct {
	// Server answers the controller's RPCs.
	Server *transport.Server
	// Name is the served data center's name (e.g. "dc2").
	Name string
	// Metrics serves /metrics, /healthz, and optionally /debug/pprof/.
	Metrics http.Handler

	metricsAddr string
}

// Close stops the RPC server.
func (a *agentApp) Close() error { return a.Server.Close() }

// serve parses flags, builds the agent with its telemetry observer, and
// starts its RPC server; run blocks on signals afterwards, and tests drive
// the returned app directly.
func serve(args []string) (*agentApp, error) {
	fs := flag.NewFlagSet("grefar-agent", flag.ContinueOnError)
	dc := fs.Int("dc", 0, "data center index this agent serves")
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	seed := fs.Int64("seed", 2012, "environment seed (must match the controller)")
	slots := fs.Int("slots", 4096, "length of the materialized local environment")
	metricsAddr := fs.String("metrics-addr", "", "address to serve /metrics and /healthz on (empty disables)")
	pprofOn := fs.Bool("pprof", false, "also mount /debug/pprof/ on the metrics address")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	c := model.NewReferenceCluster()
	prices, err := price.NewReferenceSources(*seed, *slots)
	if err != nil {
		return nil, fmt.Errorf("prices: %w", err)
	}
	if *dc < 0 || *dc >= len(prices) {
		return nil, fmt.Errorf("data center %d out of range [0,%d)", *dc, len(prices))
	}
	avail, err := availability.NewReferenceAvailability(*seed+2, c, *slots)
	if err != nil {
		return nil, fmt.Errorf("availability: %w", err)
	}

	reg := telemetry.NewRegistry()
	obs := telemetry.NewRegistryObserver(reg)
	names := make([]string, c.N())
	for i, d := range c.DataCenters {
		names[i] = d.Name
	}
	obs.SetDCNames(names)

	a, err := agent.New(agent.Config{
		Cluster:      c,
		DataCenter:   *dc,
		Price:        prices[*dc],
		Availability: avail,
		Observer:     obs,
	})
	if err != nil {
		return nil, err
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return nil, err
	}
	return &agentApp{
		Server:      a.Serve(lis),
		Name:        c.DataCenters[*dc].Name,
		Metrics:     telemetry.NewMux(reg, telemetry.MuxOptions{EnablePprof: *pprofOn}),
		metricsAddr: *metricsAddr,
	}, nil
}
