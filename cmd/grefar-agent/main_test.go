package main

import (
	"testing"
	"time"

	"grefar/internal/transport"
)

func TestServeAndPing(t *testing.T) {
	srv, name, err := serve([]string{"-dc", "1", "-listen", "127.0.0.1:0", "-slots", "64"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if name != "dc2" {
		t.Errorf("name = %q, want dc2", name)
	}
	cli, err := transport.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var pong transport.Ping
	if err := cli.Call(transport.KindPing, transport.Ping{Nonce: 3}, &pong); err != nil {
		t.Fatal(err)
	}
	if pong.Nonce != 3 {
		t.Errorf("Nonce = %d", pong.Nonce)
	}
	// State requests answer with the right site.
	var rep transport.StateReport
	if err := cli.Call(transport.KindState, transport.StateRequest{Slot: 0}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DataCenter != 1 {
		t.Errorf("DataCenter = %d, want 1", rep.DataCenter)
	}
}

func TestServeValidation(t *testing.T) {
	if _, _, err := serve([]string{"-dc", "9"}); err == nil {
		t.Error("out-of-range dc accepted")
	}
	if _, _, err := serve([]string{"-listen", "999.999.999.999:1"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, _, err := serve([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
