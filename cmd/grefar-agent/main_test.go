package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grefar/internal/model"
	"grefar/internal/transport"
)

func TestServeAndPing(t *testing.T) {
	a, err := serve([]string{"-dc", "1", "-listen", "127.0.0.1:0", "-slots", "64"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Name != "dc2" {
		t.Errorf("name = %q, want dc2", a.Name)
	}
	cli, err := transport.Dial(a.Server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var pong transport.Ping
	if err := cli.Call(transport.KindPing, transport.Ping{Nonce: 3}, &pong); err != nil {
		t.Fatal(err)
	}
	if pong.Nonce != 3 {
		t.Errorf("Nonce = %d", pong.Nonce)
	}
	// State requests answer with the right site.
	var rep transport.StateReport
	if err := cli.Call(transport.KindState, transport.StateRequest{Slot: 0}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DataCenter != 1 {
		t.Errorf("DataCenter = %d, want 1", rep.DataCenter)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := serve([]string{"-dc", "9"}); err == nil {
		t.Error("out-of-range dc accepted")
	}
	if _, err := serve([]string{"-listen", "999.999.999.999:1"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := serve([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestAgentMetricsEndpoint executes one allocation against the agent and
// checks that its mux serves the resulting slot event and the health probe.
func TestAgentMetricsEndpoint(t *testing.T) {
	a, err := serve([]string{"-dc", "1", "-listen", "127.0.0.1:0", "-slots", "64"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	c := model.NewReferenceCluster()
	cli, err := transport.Dial(a.Server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var ack transport.AllocateAck
	if err := cli.Call(transport.KindAllocate, transport.Allocate{
		Slot:    0,
		Route:   make([]int, c.J()),
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(1)),
	}, &ack); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(a.Metrics)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if want := `grefar_slots_total{origin="agent"} 1`; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
	}

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	// pprof stays off the mux without -pprof.
	if resp, err := http.Get(srv.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("/debug/pprof/ mounted without -pprof")
		}
	}
}
