package grefar

import (
	"context"

	"grefar/internal/runner"
)

// RunSpec is one simulation run of a Sweep: the inputs to drive, the
// scheduler to drive them with, and the per-run simulation options.
//
// Every spec must carry its own scheduler instance: a GreFar scheduler owns a
// reusable solver workspace, so one instance appearing in two specs of the
// same sweep is a data race. Build one scheduler per spec (they are cheap)
// rather than sharing.
type RunSpec struct {
	// Inputs bundles the cluster with its stochastic drivers for this run.
	Inputs SimInputs
	// Scheduler is the policy under test, exclusive to this spec.
	Scheduler Scheduler
	// Options configure the run like Simulate's variadic options. The sweep
	// prepends WithContext with its per-run context, so an explicit
	// WithContext here wins (options apply in order).
	Options []SimOption
}

// SweepOption configures a Sweep call.
type SweepOption interface {
	applySweep(*sweepConfig)
}

type sweepConfig struct {
	workers int
}

type sweepOptionFunc func(*sweepConfig)

func (f sweepOptionFunc) applySweep(sc *sweepConfig) { f(sc) }

// WithWorkers bounds how many runs of a Sweep execute concurrently. Zero or
// negative selects one worker per CPU (GOMAXPROCS); one runs serially. The
// results are identical at any setting — each run is fully independent and
// the result slice is ordered by spec index, not completion order.
func WithWorkers(n int) SweepOption {
	return sweepOptionFunc(func(sc *sweepConfig) { sc.workers = n })
}

// Sweep executes the independent simulation runs described by specs across a
// bounded worker pool and returns their results ordered by spec index.
//
// Determinism: the simulator is deterministic in its inputs and every run is
// isolated (own inputs, own scheduler, own metrics), so Sweep's results are
// byte-identical to running the specs serially, at any worker count. Per-run
// observers attached via spec Options never interleave with each other — each
// observer sees only its own run's slots, in slot order — but observers
// shared between specs must be safe for concurrent use.
//
// The first run to fail cancels the context handed to the remaining runs
// (in-flight runs stop between slots, unstarted runs never start) and its
// error — the one with the lowest spec index among the failures — is
// returned. Canceling ctx aborts the whole sweep the same way.
func Sweep(ctx context.Context, specs []RunSpec, opts ...SweepOption) ([]*SimResult, error) {
	var sc sweepConfig
	for _, o := range opts {
		if o != nil {
			o.applySweep(&sc)
		}
	}
	return runner.Map(ctx, sc.workers, len(specs), func(ctx context.Context, i int) (*SimResult, error) {
		spec := specs[i]
		simOpts := make([]SimOption, 0, len(spec.Options)+1)
		simOpts = append(simOpts, WithContext(ctx))
		simOpts = append(simOpts, spec.Options...)
		return Simulate(spec.Inputs, spec.Scheduler, simOpts...)
	})
}
