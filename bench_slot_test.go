package grefar_test

import (
	"fmt"
	"testing"

	"grefar"
	"grefar/internal/queue"
)

// benchmarkSlotDecision times a single Decide call on a realistic backlog;
// extra options stack on top of the reference configuration.
func benchmarkSlotDecision(b *testing.B, beta float64, opts ...grefar.Option) {
	inputs, err := grefar.ReferenceInputs(2012, 48)
	if err != nil {
		b.Fatal(err)
	}
	c := inputs.Cluster
	g, err := grefar.New(c, append([]grefar.Option{grefar.Config{V: 7.5, Beta: beta}}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	st := buildState(inputs, 12)
	lengths := queue.Lengths{
		Central: make([]float64, c.J()),
		Local:   make([][]float64, c.N()),
	}
	for j := range lengths.Central {
		lengths.Central[j] = float64(3 + j)
	}
	for i := range lengths.Local {
		lengths.Local[i] = make([]float64, c.J())
		for j := range lengths.Local[i] {
			lengths.Local[i][j] = float64((i*7 + j*3) % 20)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := g.Decide(n, st, lengths); err != nil {
			b.Fatal(err)
		}
	}
}

func buildState(in grefar.SimInputs, t int) *grefar.State {
	c := in.Cluster
	st := &grefar.State{
		Avail: make([][]float64, c.N()),
		Price: make([]float64, c.N()),
	}
	avail := in.Availability.At(t)
	for i := 0; i < c.N(); i++ {
		st.Avail[i] = append([]float64(nil), avail[i]...)
		st.Price[i] = in.Prices[i].At(t)
	}
	return st
}

// noopObserver receives every slot event and discards it, isolating the cost
// of building and delivering telemetry from the cost of consuming it.
type noopObserver struct{}

func (noopObserver) ObserveSlot(grefar.SlotEvent) {}

// BenchmarkSlotDecisionObserved is the telemetry regression guard: compare
// against BenchmarkSlotDecision to measure the observation overhead. With no
// observer attached Decide must not regress at all (the hook is a nil
// check); with a no-op observer the extra cost is one event struct per slot.
func BenchmarkSlotDecisionObserved(b *testing.B) {
	for _, beta := range []float64{0, 100} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			benchmarkSlotDecision(b, beta, grefar.WithObserver(noopObserver{}))
		})
	}
}
