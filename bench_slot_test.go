package grefar_test

import (
	"testing"

	"grefar"
	"grefar/internal/queue"
)

// benchmarkSlotDecision times a single Decide call on a realistic backlog.
func benchmarkSlotDecision(b *testing.B, beta float64) {
	inputs, err := grefar.ReferenceInputs(2012, 48)
	if err != nil {
		b.Fatal(err)
	}
	c := inputs.Cluster
	g, err := grefar.New(c, grefar.Config{V: 7.5, Beta: beta})
	if err != nil {
		b.Fatal(err)
	}
	st := buildState(inputs, 12)
	lengths := queue.Lengths{
		Central: make([]float64, c.J()),
		Local:   make([][]float64, c.N()),
	}
	for j := range lengths.Central {
		lengths.Central[j] = float64(3 + j)
	}
	for i := range lengths.Local {
		lengths.Local[i] = make([]float64, c.J())
		for j := range lengths.Local[i] {
			lengths.Local[i][j] = float64((i*7 + j*3) % 20)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := g.Decide(n, st, lengths); err != nil {
			b.Fatal(err)
		}
	}
}

func buildState(in grefar.SimInputs, t int) *grefar.State {
	c := in.Cluster
	st := &grefar.State{
		Avail: make([][]float64, c.N()),
		Price: make([]float64, c.N()),
	}
	avail := in.Availability.At(t)
	for i := 0; i < c.N(); i++ {
		st.Avail[i] = append([]float64(nil), avail[i]...)
		st.Price[i] = in.Prices[i].At(t)
	}
	return st
}
