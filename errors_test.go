package grefar_test

import (
	"errors"
	"testing"

	"grefar"
	"grefar/internal/solve"
)

// TestSentinelClassification exercises errors.Is across every wrapped layer
// the facade re-exports: construction, validation, and simulation inputs.
func TestSentinelClassification(t *testing.T) {
	if _, err := grefar.New(nil); !errors.Is(err, grefar.ErrInvalidCluster) {
		t.Errorf("New(nil): got %v, want ErrInvalidCluster", err)
	}

	bad := grefar.ReferenceCluster()
	bad.DataCenters[0].Servers = nil
	if _, err := grefar.New(bad); !errors.Is(err, grefar.ErrInvalidCluster) {
		t.Errorf("New(bad cluster): got %v, want ErrInvalidCluster", err)
	}

	c := grefar.ReferenceCluster()
	if _, err := grefar.New(c, grefar.WithV(-1)); !errors.Is(err, grefar.ErrBadConfig) {
		t.Errorf("WithV(-1): got %v, want ErrBadConfig", err)
	}
	if _, err := grefar.New(c, grefar.WithBeta(-1)); !errors.Is(err, grefar.ErrBadConfig) {
		t.Errorf("WithBeta(-1): got %v, want ErrBadConfig", err)
	}

	s, err := grefar.New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := grefar.Simulate(grefar.SimInputs{}, s); !errors.Is(err, grefar.ErrBadInputs) {
		t.Errorf("Simulate(empty inputs): got %v, want ErrBadInputs", err)
	}
	in, err := grefar.ReferenceInputs(1, 10)
	if err != nil {
		t.Fatalf("ReferenceInputs: %v", err)
	}
	if _, err := grefar.Simulate(in, s, grefar.WithSlots(-3)); !errors.Is(err, grefar.ErrBadInputs) {
		t.Errorf("WithSlots(-3): got %v, want ErrBadInputs", err)
	}
}

// TestNotConvergedErrorAs forces Frank-Wolfe to stop short of its tolerance
// and checks the typed error carries the solver diagnostics through both
// errors.Is and errors.As.
func TestNotConvergedErrorAs(t *testing.T) {
	// Minimize (x0-1)^2 + 2(x1-2)^2 over the box [0,5]^2: the interior
	// optimum makes Frank-Wolfe zigzag between vertices, so two iterations
	// cannot close the gap to 1e-12.
	obj := &solve.Quadratic{
		Linear: []float64{0, 0},
		Squares: []solve.AffineSquare{
			{Weight: 1, Index: []int{0}, Coef: []float64{1}, Offset: -1},
			{Weight: 2, Index: []int{1}, Coef: []float64{1}, Offset: -2},
		},
	}
	oracle := solve.LinearOracle(func(grad, out []float64) {
		for j := range out {
			if grad[j] < 0 {
				out[j] = 5
			} else {
				out[j] = 0
			}
		}
	})
	_, err := solve.FrankWolfe(obj, oracle, []float64{0, 0}, solve.FWOptions{
		MaxIters:           2,
		Tol:                1e-12,
		RequireConvergence: true,
	})
	if !errors.Is(err, grefar.ErrNotConverged) {
		t.Fatalf("got %v, want ErrNotConverged", err)
	}
	var nc *grefar.NotConvergedError
	if !errors.As(err, &nc) {
		t.Fatalf("errors.As(NotConvergedError) failed on %v", err)
	}
	if nc.Solver != "frank-wolfe" || nc.Iters != 2 {
		t.Errorf("diagnostics = %+v, want solver frank-wolfe after 2 iters", nc)
	}
	if nc.Residual <= 0 {
		t.Errorf("residual = %g, want positive duality gap", nc.Residual)
	}

	// Without RequireConvergence the same run must stay silent.
	if _, err := solve.FrankWolfe(obj, oracle, []float64{0, 0}, solve.FWOptions{
		MaxIters: 2, Tol: 1e-12,
	}); err != nil {
		t.Errorf("without RequireConvergence: unexpected error %v", err)
	}
}
