# GreFar build targets. The module is stdlib-only; everything here is plain
# go tooling.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test tier1 vet race bench fuzz golden check clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# tier1 is the merge gate: compile, vet, the full test suite under the race
# detector, and a short fuzz smoke of both native fuzz targets.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzSimplex -fuzztime $(FUZZTIME) ./internal/lp
	$(GO) test -run '^$$' -fuzz FuzzApply -fuzztime $(FUZZTIME) ./internal/queue

# fuzz runs the native fuzz targets for FUZZTIME each (default 10s); raise it
# for a deeper soak, e.g. make fuzz FUZZTIME=5m.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSimplex -fuzztime $(FUZZTIME) ./internal/lp
	$(GO) test -run '^$$' -fuzz FuzzApply -fuzztime $(FUZZTIME) ./internal/queue

# golden regenerates the committed golden traces under
# internal/invariant/testdata/golden after an intentional behavior change.
# Inspect the diff before committing: every changed line is a behavior change.
golden:
	$(GO) test ./internal/invariant -run TestGoldenTraces -update

# check replays the paper's reference experiment with the invariant checker
# attached: queue dynamics (12)-(13), action feasibility, job conservation,
# and the drift-plus-penalty objective are re-verified every slot.
check: build
	$(GO) run ./cmd/grefar-sim -experiment table1 -check

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
