# GreFar build targets. The module is stdlib-only; everything here is plain
# go tooling.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test tier1 vet race bench bench-slot bench-json bench-compare hollow-bench fuzz golden check clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# tier1 is the merge gate: compile, vet, the full test suite under the race
# detector (the sweep-engine tests in internal/runner and the parallel
# experiment fan-out only prove determinism when raced; the serving layer in
# internal/serve and cmd/grefar-serve only proves its tick/checkpoint locking
# when raced; the degraded-mode controller and the chaos transport only prove
# their kill/restart determinism when raced), the Decide allocation-budget
# guard (which -race skips, so it runs plain here), race-enabled hollow
# smokes (64 in-process agents, 5 slots, 5% killed mid-run — the degraded-mode
# cycle end to end, once under the single controller and once under the
# 2-partition control plane), a race-enabled rerun of the sparse/decomposed
# solver suites (the pooled block solves only prove their disjoint-write
# determinism when raced) plus the cross-solver agreement smoke, and a short
# fuzz smoke of the native fuzz targets, including the snapshot-restore,
# wire-frame, and incremental-refresh surfaces.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/runner
	$(GO) test -race -count=1 ./internal/serve/... ./cmd/grefar-serve
	$(GO) test -race -count=1 ./internal/controller ./internal/controlplane ./internal/transport/... ./internal/experiments ./internal/hollow
	$(GO) test -race -count=1 -run 'TestSparse|TestDecomposed|TestSharingADMM' ./internal/core ./internal/solve
	$(GO) test -count=1 -run TestCrossCheckDecomposed ./internal/invariant
	$(GO) run -race ./cmd/grefar-hollow -agents 64 -slots 5 -kill-frac 0.05
	$(GO) run -race ./cmd/grefar-hollow -agents 64 -slots 5 -kill-frac 0.05 -partitions 2
	$(GO) test -count=1 -run TestDecideAllocationBudget .
	$(GO) test -run '^$$' -fuzz FuzzSimplex -fuzztime $(FUZZTIME) ./internal/lp
	$(GO) test -run '^$$' -fuzz FuzzApply -fuzztime $(FUZZTIME) ./internal/queue
	$(GO) test -run '^$$' -fuzz FuzzWarmRepair -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzSparseRefresh -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzRestoreSnapshot -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/serve/snapshot
	$(GO) test -run '^$$' -fuzz FuzzServerFrame -fuzztime $(FUZZTIME) ./internal/transport

# fuzz runs the native fuzz targets for FUZZTIME each (default 10s); raise it
# for a deeper soak, e.g. make fuzz FUZZTIME=5m.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSimplex -fuzztime $(FUZZTIME) ./internal/lp
	$(GO) test -run '^$$' -fuzz FuzzApply -fuzztime $(FUZZTIME) ./internal/queue
	$(GO) test -run '^$$' -fuzz FuzzWarmRepair -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzSparseRefresh -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzRestoreSnapshot -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/serve/snapshot
	$(GO) test -run '^$$' -fuzz FuzzServerFrame -fuzztime $(FUZZTIME) ./internal/transport

# golden regenerates the committed golden traces — the healthy ones under
# internal/invariant/testdata/golden and the degraded-mode chaos trace under
# internal/controller/testdata — after an intentional behavior change.
# Inspect the diff before committing: every changed line is a behavior change.
golden:
	$(GO) test ./internal/invariant -run TestGoldenTraces -update
	$(GO) test ./internal/controller -run TestGoldenChaosTrace -update
	$(GO) test ./internal/controlplane -run TestPartitionedMatchesSingle -update

# check replays the paper's reference experiment with the invariant checker
# attached: queue dynamics (12)-(13), action feasibility, job conservation,
# and the drift-plus-penalty objective are re-verified every slot.
check: build
	$(GO) run ./cmd/grefar-sim -experiment table1 -check

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-slot guards the hot path: it runs the per-slot Decide benchmark with
# allocation reporting, then enforces the allocs/op ceilings recorded in
# testdata/bench_slot_baseline.txt via TestDecideAllocationBudget. The test
# fails if allocs/op regresses above the baseline; after an intentional
# change, measure with the benchmark and edit the baseline file.
bench-slot:
	$(GO) test -run '^$$' -bench BenchmarkSlotDecision -benchmem .
	$(GO) test -count=1 -run TestDecideAllocationBudget -v .

# SLOT_BENCHES is the set recorded in BENCH_slot.json: the per-slot solver
# cost on the reference cluster (with and without the warm-started away-step
# path) plus the large-instance N=200/J=100 arms (dense, sparse, decomposed,
# pooled decomposed) at ~10% active-pair density. DIST_BENCHES is
# the set recorded in BENCH_distributed.json: the 3-agent point-to-point
# controller round, the hollow-fleet sweep at 100/500/1000/2000 agents, and
# the partitioned-control-plane cells (agents x partitions).
SLOT_BENCHES = BenchmarkSlotDecision$$
DIST_BENCHES = BenchmarkDistributedSlot$$|BenchmarkHollowSlot/|BenchmarkPartitionedSlot/
BENCHCOUNT ?= 3

# bench-json refreshes the committed baselines BENCH_slot.json and
# BENCH_distributed.json. Run it after an intentional performance change and
# commit the diff.
bench-json:
	$(GO) test -run '^$$' -bench '$(SLOT_BENCHES)' -benchmem -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -out BENCH_slot.json
	$(GO) test -run '^$$' -bench '$(DIST_BENCHES)' -benchmem -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -out BENCH_distributed.json

# bench-compare re-runs the same benchmarks and fails on >15% ns/op or
# allocs/op regressions: the beta=100 slot decisions (cold and warm) and the
# N=200/J=100 large-instance arms against BENCH_slot.json (the benchjson
# default guard covers both families), and the distributed slot ticks
# (point-to-point and every
# hollow fleet size) against BENCH_distributed.json; other benchmarks warn.
bench-compare:
	$(GO) test -run '^$$' -bench '$(SLOT_BENCHES)' -benchmem -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -compare BENCH_slot.json -max-regress 0.15
	$(GO) test -run '^$$' -bench '$(DIST_BENCHES)' -benchmem -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -compare BENCH_distributed.json \
			-guard '^BenchmarkDistributedSlot$$|^BenchmarkHollowSlot|^BenchmarkPartitionedSlot' -max-regress 0.15

# hollow-bench runs the hollow-fleet scale sweep locally — fault-free and
# chaos variants at each fleet size — and prints the measurement table
# (slot-tick latency percentiles, throughput, allocs/slot, heap ceiling).
hollow-bench: build
	$(GO) run ./cmd/grefar-sim -experiment scale

clean:
	$(GO) clean ./...
