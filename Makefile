# GreFar build targets. The module is stdlib-only; everything here is plain
# go tooling.

GO ?= go

.PHONY: all build test tier1 vet race bench clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# tier1 is the merge gate: compile, vet, and the full test suite under the
# race detector.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
