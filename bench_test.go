package grefar_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (section VI) at full scale (2000 hourly slots, as in the
// paper's plots) and reports the headline numbers as benchmark metrics.
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks are not expected to match the paper's absolute values (the
// substrate is a synthetic reproduction of a proprietary trace), but the
// shapes must hold: energy decreasing and delay increasing in V (Fig. 2),
// fairness improving sharply at marginal energy cost for beta=100 (Fig. 3),
// GreFar beating Always on energy and fairness (Fig. 4), GreFar paying
// below-average electricity prices (Fig. 5), most work landing on the
// cheapest site (section VI-B1), and the Theorem 1 bounds (queue O(V), cost
// gap O(1/V)).

import (
	"fmt"
	"runtime"
	"testing"

	"grefar"
	"grefar/internal/experiments"
)

// paperScale is the horizon of the paper's figures.
var paperScale = experiments.Config{Seed: 2012, Slots: 2000}

func BenchmarkTableI(b *testing.B) {
	for n := 0; n < b.N; n++ {
		rows, err := experiments.TableI(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for _, r := range rows {
				b.Logf("%s speed=%.2f power=%.2f avgPrice=%.3f costPerWork=%.3f",
					r.DC, r.Speed, r.Power, r.AvgPrice, r.CostPerWork)
			}
			b.ReportMetric(rows[1].CostPerWork, "dc2_cost_per_work")
		}
	}
}

func BenchmarkFig1Trace(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Fig1(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			var peak float64
			for _, series := range res.OrgWork {
				for _, v := range series {
					if v > peak {
						peak = v
					}
				}
			}
			b.ReportMetric(peak, "peak_org_work")
		}
	}
}

func BenchmarkFig2VSweep(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Fig2(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for x, v := range res.V {
				b.Logf("V=%-5g energy=%.3f delayDC1=%.3f delayDC2=%.3f",
					v, res.FinalEnergy[x], res.FinalDelayDC1[x], res.FinalDelayDC2[x])
			}
			b.ReportMetric(res.FinalEnergy[0]-res.FinalEnergy[len(res.FinalEnergy)-1], "energy_saving_V20_vs_V0.1")
			b.ReportMetric(res.FinalDelayDC1[len(res.FinalDelayDC1)-1], "delayDC1_at_V20")
		}
	}
}

func BenchmarkFig3BetaSweep(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Fig3(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for x, beta := range res.Beta {
				b.Logf("beta=%-4g energy=%.3f fairness=%.4f delayDC1=%.3f",
					beta, res.FinalEnergy[x], res.FinalFairness[x], res.FinalDelayDC1[x])
			}
			b.ReportMetric(res.FinalFairness[1]-res.FinalFairness[0], "fairness_gain_beta100")
			b.ReportMetric(res.FinalEnergy[1]/res.FinalEnergy[0], "energy_ratio_beta100")
		}
	}
}

func BenchmarkFig4Comparison(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Fig4(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for x, name := range res.Names {
				b.Logf("%-22s energy=%.3f fairness=%.4f delayDC1=%.3f work=%v",
					name, res.FinalEnergy[x], res.FinalFairness[x], res.FinalDelayDC1[x], res.WorkPerDC[x])
			}
			b.ReportMetric(res.FinalEnergy[1]/res.FinalEnergy[0], "always_over_grefar_energy")
		}
	}
}

func BenchmarkFig5Snapshot(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Fig5(paperScale, 30)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("meanPriceDC1=%.4f grefarPaid=%.4f alwaysPaid=%.4f (corr %.3f vs %.3f)",
				res.MeanPriceDC1, res.GreFarPricePaid, res.AlwaysPricePaid, res.GreFarCorr, res.AlwaysCorr)
			b.ReportMetric(res.AlwaysPricePaid-res.GreFarPricePaid, "price_saving_per_work")
		}
	}
}

func BenchmarkWorkShare(b *testing.B) {
	for n := 0; n < b.N; n++ {
		ws, err := experiments.WorkShare(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("avg work per slot per site: %.3f %.3f %.3f (paper: 33.967 48.502 14.770)", ws[0], ws[1], ws[2])
			b.ReportMetric(ws[1], "dc2_work_per_slot")
		}
	}
}

func BenchmarkTheorem1Bounds(b *testing.B) {
	cfg := experiments.Config{Seed: 2012, Slots: 24 * 20}
	for n := 0; n < b.N; n++ {
		res, err := experiments.Theorem1(cfg, []float64{0.5, 2.5, 7.5, 20}, 12)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			gaps := res.Gap()
			for x, v := range res.V {
				b.Logf("V=%-4g maxQueue=%.1f avgCost=%.3f gapToLookahead=%.3f", v, res.MaxQueue[x], res.AvgCost[x], gaps[x])
			}
			b.Logf("lookahead benchmark (T=%d): %.3f", res.T, res.LookaheadCost)
			b.ReportMetric(res.MaxQueue[len(res.MaxQueue)-1]/res.MaxQueue[0], "queue_growth_V20_over_V0.5")
			b.ReportMetric(gaps[0]-gaps[len(gaps)-1], "gap_shrink")
		}
	}
}

func BenchmarkMPCComparison(b *testing.B) {
	cfg := experiments.Config{Seed: 2012, Slots: 24 * 30}
	for n := 0; n < b.N; n++ {
		res, err := experiments.MPCComparison(cfg, 24)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("grefar %.3f (delay %.2f) vs oracle-mpc(W=%d) %.3f (delay %.2f) vs always %.3f",
				res.GreFarEnergy, res.GreFarDelay, res.Window, res.MPCEnergy, res.MPCDelay, res.AlwaysEnergy)
			b.ReportMetric(res.ForesightAdvantageFrac, "foresight_advantage_frac")
		}
	}
}

func BenchmarkDelayTails(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.DelayTails(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for x := range res.V {
				b.Logf("V=%-5g mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
					res.V[x], res.MeanDC1[x], res.P50[x], res.P95[x], res.P99[x], res.MaxDC1[x])
			}
			b.ReportMetric(res.P99[len(res.P99)-1], "p99_delay_at_V20")
		}
	}
}

func BenchmarkRobustness(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Robustness(paperScale, []int64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("energy: grefar %s vs always %s; gap %s; fairness gap %s; delay gap %s; violations %d/5",
				res.GreFarEnergy, res.AlwaysEnergy, res.EnergyGapFrac, res.FairnessGap, res.DelayGap, res.Violations)
			b.ReportMetric(res.EnergyGapFrac.Mean, "mean_energy_gap_frac")
			b.ReportMetric(float64(res.Violations), "ordering_violations")
		}
	}
}

func BenchmarkAblationGreedyVsLP(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.AblationGreedyVsLP(experiments.Config{Seed: 2012, Slots: 200}, 100)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("objective agreement %.2e, greedy %.3fms vs LP %.3fms (%.1fx)",
				res.MaxObjectiveDiff, float64(res.GreedyTime.Microseconds())/1000,
				float64(res.LPTime.Microseconds())/1000, res.Speedup)
			b.ReportMetric(res.Speedup, "greedy_speedup_x")
		}
	}
}

func BenchmarkAblationRoutingTieBreak(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.AblationRoutingTieBreak(paperScale)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Logf("split-ties energy %.3f (work %.1f/%.1f/%.1f) vs first-site %.3f (work %.1f/%.1f/%.1f)",
				res.SplitEnergy, res.SplitWork[0], res.SplitWork[1], res.SplitWork[2],
				res.FirstEnergy, res.FirstWork[0], res.FirstWork[1], res.FirstWork[2])
			b.ReportMetric(res.SplitEnergy-res.FirstEnergy, "tie_split_cost_delta")
		}
	}
}

func BenchmarkAblationFWIters(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.AblationFWIters(experiments.Config{Seed: 2012, Slots: 500}, []int{5, 20, 50, 150}, 12)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for x, it := range res.Iters {
				b.Logf("FW iters=%-4d relGap=%.2e", it, res.RelGap[x])
			}
		}
	}
}

// BenchmarkSlotDecision measures the per-slot cost of the GreFar optimizer
// itself — the quantity that determines controller scalability. No observer
// is attached, so every reported alloc is solver and bookkeeping churn inside
// Decide; `make bench-slot` compares allocs/op against the recorded baseline
// in testdata/bench_slot_baseline.txt.
func BenchmarkSlotDecision(b *testing.B) {
	for _, beta := range []float64{0, 100} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			b.ReportAllocs()
			benchmarkSlotDecision(b, beta)
		})
	}
	// The optimized solver path: cross-slot warm start + away-step
	// Frank-Wolfe. Compare against beta=100 for the solver-engineering win;
	// `make bench-json` records both in BENCH_slot.json.
	b.Run("beta=100-warm", func(b *testing.B) {
		b.ReportAllocs()
		benchmarkSlotDecision(b, 100, grefar.WithWarmStart(true), grefar.WithAwaySteps(true))
	})
	// The large-instance arms: a 200-site, 100-job-type synthetic cluster at
	// ~10% active-pair density, where the sparse index and block decomposition
	// earn their keep. All arms share the same instance and the same per-slot
	// input drift; compare against "dense" for the sparse/decomposed win.
	for _, arm := range []struct {
		name string
		kind grefar.SolverKind
	}{
		{"dense", grefar.SolverMonolithic},
		{"sparse", grefar.SolverSparse},
		{"decomposed", grefar.SolverDecomposed},
		{"decomposed-pool", grefar.SolverDecomposed},
	} {
		workers := 1
		if arm.name == "decomposed-pool" {
			workers = runtime.GOMAXPROCS(0)
		}
		b.Run("N=200/J=100/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			benchmarkLargeSlotDecision(b, arm.kind, workers)
		})
	}
}

// benchmarkLargeSlotDecision times Decide on the solver-scale large instance:
// 200 sites x 100 job types at 10% density, warm-started, with small input
// drift each iteration so the incremental coefficient refresh is on its
// steady-state path rather than replaying one frozen slot.
func benchmarkLargeSlotDecision(b *testing.B, kind grefar.SolverKind, workers int) {
	in, err := experiments.NewSolverScaleInstance(2012, 200, 100, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := grefar.New(in.Cluster,
		grefar.Config{V: 7.5, Beta: 100},
		grefar.WithWarmStart(true),
		grefar.WithSolver(kind),
		grefar.WithSolverWorkers(workers),
	)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Decide(0, in.State, in.Lengths); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		in.Mutate()
		b.StartTimer()
		if _, err := g.Decide(n+1, in.State, in.Lengths); err != nil {
			b.Fatal(err)
		}
	}
}
