package grefar_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"grefar"
)

// sessionInputs builds the reference environment in serving mode: the
// workload generator removed, so arrivals come exclusively from Submit.
func sessionInputs(t testing.TB, slots int) grefar.SimInputs {
	t.Helper()
	in, err := grefar.ReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	in.Workload = nil
	return in
}

// sessionSchedule is the deterministic ingest stream for golden tests: the
// jobs submitted before each slot's tick.
func sessionSchedule(slots, types int) [][]grefar.Job {
	out := make([][]grefar.Job, slots)
	for s := range out {
		var jobs []grefar.Job
		for typ := 0; typ < types; typ++ {
			if n := (s + 3*typ) % 7; n > 0 {
				jobs = append(jobs, grefar.Job{Type: typ, Count: n})
			}
		}
		out[s] = jobs
	}
	return out
}

func TestOpenRequiresInputs(t *testing.T) {
	if _, err := grefar.Open(grefar.WithV(7.5)); !errors.Is(err, grefar.ErrBadInputs) {
		t.Fatalf("Open without inputs: got %v, want ErrBadInputs", err)
	}
}

func TestSessionOpenSubmitTick(t *testing.T) {
	s, err := grefar.Open(
		grefar.WithInputs(sessionInputs(t, 64)),
		grefar.WithV(7.5), grefar.WithBeta(100),
		grefar.WithActionValidation(true), grefar.WithCheck(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit([]grefar.Job{{Type: 0, Count: 3}, {Type: 2, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slot != 0 || rep.Admitted <= 0 {
		t.Fatalf("first tick: %+v", rep)
	}
	if _, err := s.Submit([]grefar.Job{{Type: -1}}); !errors.Is(err, grefar.ErrBadJob) {
		t.Fatalf("bad submit: got %v, want ErrBadJob", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(context.Background()); !errors.Is(err, grefar.ErrSessionClosed) {
		t.Fatalf("tick after close: got %v, want ErrSessionClosed", err)
	}
}

func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	opts := []grefar.SessionOption{grefar.WithInputs(sessionInputs(t, 16)), grefar.WithV(7.5)}
	if _, err := grefar.Restore(bytes.NewReader([]byte("junk")), opts...); !errors.Is(err, grefar.ErrCorruptSnapshot) {
		t.Fatalf("junk restore: got %v, want ErrCorruptSnapshot", err)
	}
}

// TestSessionGoldenRoundTrip is the serving-mode golden guarantee: running N
// slots, checkpointing, restoring into a fresh session, and running M more
// produces the byte-identical slot-event stream and queue trajectory of the
// uninterrupted N+M run — across the solver regimes (linear beta=0, convex
// beta>0, convex warm-started).
func TestSessionGoldenRoundTrip(t *testing.T) {
	const slots, split = 40, 20
	schedule := sessionSchedule(slots, 8)

	cases := []struct {
		name string
		opts []grefar.SessionOption
	}{
		{"beta0", []grefar.SessionOption{grefar.WithV(7.5), grefar.WithBeta(0)}},
		{"beta0_warm", []grefar.SessionOption{grefar.WithV(7.5), grefar.WithBeta(0), grefar.WithWarmStart(true)}},
		{"beta100_cold", []grefar.SessionOption{grefar.WithV(7.5), grefar.WithBeta(100)}},
		{"beta100_warm", []grefar.SessionOption{grefar.WithV(7.5), grefar.WithBeta(100), grefar.WithWarmStart(true)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			open := func(events *bytes.Buffer) (*grefar.Session, *bytes.Buffer) {
				obs := grefar.NewJSONLObserver(events)
				opts := append([]grefar.SessionOption{
					grefar.WithInputs(sessionInputs(t, slots)),
					grefar.WithActionValidation(true), grefar.WithCheck(true),
					grefar.WithObserver(obs),
				}, tc.opts...)
				s, err := grefar.Open(opts...)
				if err != nil {
					t.Fatal(err)
				}
				return s, events
			}
			drive := func(s *grefar.Session, from, to int) []grefar.QueueLengths {
				t.Helper()
				var traj []grefar.QueueLengths
				for slot := from; slot < to; slot++ {
					if _, err := s.Submit(schedule[slot]); err != nil {
						t.Fatal(err)
					}
					if _, err := s.Tick(context.Background()); err != nil {
						t.Fatal(err)
					}
					traj = append(traj, s.Lengths())
				}
				return traj
			}

			full, fullEvents := open(new(bytes.Buffer))
			wantTraj := drive(full, 0, slots)

			first, firstEvents := open(new(bytes.Buffer))
			drive(first, 0, split)
			var snap bytes.Buffer
			if err := first.Checkpoint(&snap); err != nil {
				t.Fatal(err)
			}

			second, secondEvents := open(new(bytes.Buffer))
			if err := second.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			if second.Slot() != split {
				t.Fatalf("restored at slot %d, want %d", second.Slot(), split)
			}
			gotTraj := drive(second, split, slots)

			if !reflect.DeepEqual(gotTraj, wantTraj[split:]) {
				t.Fatal("restored queue trajectory diverged from the uninterrupted run")
			}
			resumed := append(append([]byte(nil), firstEvents.Bytes()...), secondEvents.Bytes()...)
			if !bytes.Equal(resumed, fullEvents.Bytes()) {
				t.Fatalf("slot-event stream not byte-identical across checkpoint/restore:\nuninterrupted %d bytes, resumed %d bytes",
					fullEvents.Len(), len(resumed))
			}
		})
	}
}

func TestSimulateContext(t *testing.T) {
	in, err := grefar.ReferenceInputs(2012, 48)
	if err != nil {
		t.Fatal(err)
	}
	s, err := grefar.New(in.Cluster, grefar.WithV(7.5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := grefar.Simulate(in, s, grefar.WithSlots(48))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := grefar.New(in.Cluster, grefar.WithV(7.5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := grefar.SimulateContext(context.Background(), in, s2, grefar.WithSlots(48))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SimulateContext diverged from Simulate")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	s3, err := grefar.New(in.Cluster, grefar.WithV(7.5))
	if err != nil {
		t.Fatal(err)
	}
	// The context parameter wins over a conflicting WithContext option.
	_, err = grefar.SimulateContext(canceled, in, s3,
		grefar.WithSlots(48), grefar.WithContext(context.Background()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SimulateContext: got %v, want context.Canceled", err)
	}
}

func ExampleOpen() {
	in, err := grefar.ReferenceInputs(2012, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	in.Workload = nil // arrivals come from Submit
	s, err := grefar.Open(grefar.WithInputs(in), grefar.WithV(7.5), grefar.WithBeta(100))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	if _, err := s.Submit([]grefar.Job{{Type: 0, Count: 2}}); err != nil {
		fmt.Println(err)
		return
	}
	rep, err := s.Tick(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("slot %d admitted %d\n", rep.Slot, rep.Admitted)
	// Output: slot 0 admitted 2
}
